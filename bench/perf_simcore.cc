// Micro-benchmark of the simulator core hot path: event queue dispatch and
// the Network send/broadcast path.  Unlike the figure harnesses this measures
// wall-clock throughput, not message units — it exists so the perf trajectory
// of the discrete-event core is tracked from PR to PR.
//
// Writes a small JSON report (BENCH_simcore.json by default, override with
// --out or the ELINK_BENCH_JSON cache variable at configure time):
//   events_per_sec           inline delivery flood: arena payloads dispatched
//                            through the bulk bucket drain — the simulator's
//                            real message hot path
//   callback_events_per_sec  legacy closure flood (payload-carrying
//                            callbacks through RunOne), kept for continuity
//                            with pre-arena baselines
//   sends_per_sec            Network broadcast storm on a 32x32 grid
//   peak_queue_size          high-water mark of the queue during the flood
//   peak_rss_kb              ru_maxrss after the floods (allocator footprint)
//
// `--events N` / `--sends N` scale the workload; the ctest smoke run uses
// tiny counts so the harness is exercised on every test run.
//
// `--check-against <baseline.json>` compares this run against a committed
// report (the repo keeps one at the root as BENCH_simcore.json) and exits
// non-zero when events/sec or sends/sec regressed more than 10% — the PR
// perf gate.
//
// The wire-format codec gets the same treatment: `--wire-frames N` scales an
// encode+decode throughput loop over a representative message mix, the
// numbers land in a second JSON report (BENCH_wire.json by default, override
// with --wire-out), and `--check-wire-against <baseline.json>` fails the run
// when either direction regressed more than 10%.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "proto/wire.h"
#include "sim/event_queue.h"
#include "sim/message.h"
#include "sim/msg_arena.h"
#include "sim/network.h"
#include "sim/topology.h"

#ifndef ELINK_BENCH_JSON_DEFAULT
#define ELINK_BENCH_JSON_DEFAULT "BENCH_simcore.json"
#endif

using namespace elink;

namespace {

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

struct FloodOutcome {
  double events_per_sec = 0.0;
  size_t peak_queue_size = 0;
};

/// Floods the queue with inline delivery events whose payloads live in a
/// MessageArena — the exact shape of the Network's post-arena message path:
/// POD enqueue, bucket-at-a-time drain, intrusive refcount release.  The
/// handler re-schedules (AddRef + enqueue) at a constant hop delay, exactly
/// like the synchronous regime (Section 4: every hop takes one time unit),
/// so whole rounds of deliveries land in shared buckets and drain through
/// the bulk-synchronous fast path; the queue holds a steady few hundred
/// in-flight deliveries throughout.
struct DeliveryFloodCtx {
  EventQueue* q = nullptr;
  MessageArena* arena = nullptr;
  MessageArena::Slot* payload = nullptr;
  uint64_t fired = 0;       // Dispatched deliveries.
  uint64_t remaining = 0;   // Re-schedules still allowed.
  uint64_t accum = 0;       // Defeats dead-code elimination.
};

void OnFloodDelivery(void* ctx, int from, int to, void* payload) {
  auto* c = static_cast<DeliveryFloodCtx*>(ctx);
  auto* slot = static_cast<MessageArena::Slot*>(payload);
  c->accum += slot->msg.doubles.size() + static_cast<size_t>(from + to);
  ++c->fired;
  if (c->remaining > 0) {
    --c->remaining;
    MessageArena::AddRef(c->payload);
    c->q->ScheduleDeliveryAfter(0.5, static_cast<int>(c->fired & 63),
                                static_cast<int>(c->fired & 7), c->payload);
  }
  c->arena->Release(slot);
}

void OnFloodTimer(void*, int, int, uint64_t) {}

FloodOutcome DeliveryFlood(uint64_t num_events) {
  EventQueue q;
  MessageArena arena;
  DeliveryFloodCtx ctx;
  ctx.q = &q;
  ctx.arena = &arena;
  q.SetInlineHandlers(&OnFloodDelivery, &OnFloodTimer, &ctx);
  Message m;
  m.category = "perf.flood";
  m.doubles = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  ctx.payload = arena.Create(std::move(m));
  // Seed chains across a few "rounds" so several buckets are live at once.
  const int kChains = 256;
  ctx.remaining = num_events > static_cast<uint64_t>(kChains)
                      ? num_events - kChains
                      : 0;
  for (int i = 0; i < kChains; ++i) {
    MessageArena::AddRef(ctx.payload);
    q.ScheduleDeliveryAfter(static_cast<double>(i & 7) * 0.125, i, i & 7,
                            ctx.payload);
  }
  const auto t0 = std::chrono::steady_clock::now();
  q.RunAll(num_events);
  const auto t1 = std::chrono::steady_clock::now();
  // Drain the tail beyond the cap so every scheduled payload is released.
  q.RunAll();
  arena.Release(ctx.payload);
  FloodOutcome out;
  out.events_per_sec = static_cast<double>(num_events) / Seconds(t0, t1);
  out.peak_queue_size = q.PeakSize();
  if (ctx.accum == UINT64_MAX) std::printf("impossible\n");
  return out;
}

/// Legacy flood: callbacks that carry a realistic payload (the pre-arena
/// Network delivery closures captured a full Message), re-scheduling from
/// inside a RunOne drain loop so the queue stays at a steady depth.
FloodOutcome EventFlood(uint64_t num_events) {
  EventQueue q;
  uint64_t fired = 0;
  size_t peak = 0;
  // The closure mirrors the Network delivery closures on the hot path: a
  // this-pointer-sized reference, two node ids, and a shared payload handle
  // (~32 bytes of captures).
  const auto payload = std::make_shared<const Message>([] {
    Message m;
    m.category = "perf.flood";
    m.doubles = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
    return m;
  }());
  const auto delivery = [&fired, payload](int from, int to) {
    return [&fired, payload, from, to]() {
      fired += payload->doubles.size() + static_cast<size_t>(from + to);
    };
  };
  // Pre-fill a few hundred chains so pops interleave non-trivially.
  const int kChains = 256;
  for (int i = 0; i < kChains; ++i) {
    q.ScheduleAt(static_cast<double>(i % 7) * 0.125, delivery(i, i % 7));
  }
  const auto t0 = std::chrono::steady_clock::now();
  uint64_t n = 0;
  while (n < num_events) {
    if (!q.RunOne()) break;
    ++n;
    q.ScheduleAfter(0.5 + (n % 16) * 0.03125,
                    delivery(static_cast<int>(n % 64), static_cast<int>(n % 7)));
    if (q.Size() > peak) peak = q.Size();
  }
  const auto t1 = std::chrono::steady_clock::now();
  FloodOutcome out;
  out.events_per_sec = static_cast<double>(n) / Seconds(t0, t1);
  out.peak_queue_size = peak;
  return out;
}

/// Gossip node: re-broadcasts every received message while the shared send
/// budget lasts.  Exercises Send/Broadcast fan-out, fault gate, and stats.
class GossipNode : public Node {
 public:
  GossipNode(uint64_t* budget) : budget_(budget) {}
  void HandleMessage(int, const Message& msg) override {
    if (*budget_ == 0) return;
    const size_t fanout = network()->neighbors(id()).size();
    if (*budget_ < fanout) {
      *budget_ = 0;
      return;
    }
    *budget_ -= fanout;
    network()->Broadcast(id(), msg);
  }

 private:
  uint64_t* budget_;
};

double SendFlood(uint64_t num_sends) {
  Network::Config cfg;
  cfg.synchronous = true;
  cfg.seed = 42;
  Network net(MakeGridTopology(32, 32), cfg);
  uint64_t budget = num_sends;
  net.InstallNodes(
      [&budget](int) { return std::make_unique<GossipNode>(&budget); });
  Message seed_msg;
  seed_msg.category = "perf.gossip";
  seed_msg.doubles = {1.0, 2.0, 3.0, 4.0};
  seed_msg.ints = {1, 2};
  const auto t0 = std::chrono::steady_clock::now();
  net.Broadcast(0, seed_msg);
  net.Run();
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(net.stats().total_sends()) / Seconds(t0, t1);
}

/// Wire-codec throughput over a representative message mix: a two-int
/// control frame, an enveloped mid-size reliable frame, and a feature push
/// — the three shapes that dominate protocol traffic.
struct WireOutcome {
  double encode_frames_per_sec = 0.0;
  double decode_frames_per_sec = 0.0;
  double encode_mb_per_sec = 0.0;
  double decode_mb_per_sec = 0.0;
};

std::vector<Message> WireMix() {
  std::vector<Message> mix;
  Message control;
  control.type = 3;
  control.ints = {1'000'000'007, 42};
  mix.push_back(control);
  Message reliable;
  reliable.type = 12;
  reliable.ints = {7, -19, 1 << 20};
  reliable.doubles = {3.25, -0.5, 1e300};
  reliable.rel_seq = 4711;
  reliable.rel_from = 17;
  reliable.rel_ack = true;
  mix.push_back(reliable);
  Message push;
  push.type = 21;
  push.ints = {260};
  push.doubles = {0.125, 2.5, -3.75, 8.0, 1.5, -0.25, 6.5, 0.875};
  mix.push_back(push);
  return mix;
}

WireOutcome WireBench(uint64_t num_frames) {
  const std::vector<Message> mix = WireMix();

  // Encode: append frames into a reusable buffer, flushed periodically so
  // the working set stays cache-resident like a real channel's send buffer.
  std::vector<uint8_t> buf;
  uint64_t encoded = 0, encoded_bytes = 0;
  const auto e0 = std::chrono::steady_clock::now();
  while (encoded < num_frames) {
    wire::EncodeFrame(mix[encoded % mix.size()], &buf);
    ++encoded;
    if (buf.size() > (1u << 16)) {
      encoded_bytes += buf.size();
      buf.clear();
    }
  }
  encoded_bytes += buf.size();
  const auto e1 = std::chrono::steady_clock::now();

  // Decode: stream-frame repeatedly over one pre-encoded buffer of the mix.
  std::vector<uint8_t> stream;
  for (int rep = 0; rep < 512; ++rep) {
    wire::EncodeFrame(mix[rep % mix.size()], &stream);
  }
  uint64_t decoded = 0, decoded_bytes = 0, accum = 0;
  const auto d0 = std::chrono::steady_clock::now();
  while (decoded < num_frames) {
    size_t at = 0;
    while (at < stream.size() && decoded < num_frames) {
      size_t consumed = 0;
      Result<Message> m = wire::DecodeFrame(stream.data() + at,
                                            stream.size() - at, &consumed);
      if (!m.ok()) {
        std::fprintf(stderr, "wire decode failed: %s\n",
                     m.status().ToString().c_str());
        std::abort();
      }
      accum += m.value().ints.size() + m.value().doubles.size();
      at += consumed;
      decoded_bytes += consumed;
      ++decoded;
    }
  }
  const auto d1 = std::chrono::steady_clock::now();
  if (accum == UINT64_MAX) std::printf("impossible\n");

  WireOutcome out;
  out.encode_frames_per_sec = static_cast<double>(encoded) / Seconds(e0, e1);
  out.decode_frames_per_sec = static_cast<double>(decoded) / Seconds(d0, d1);
  out.encode_mb_per_sec =
      static_cast<double>(encoded_bytes) / (1e6 * Seconds(e0, e1));
  out.decode_mb_per_sec =
      static_cast<double>(decoded_bytes) / (1e6 * Seconds(d0, d1));
  return out;
}

uint64_t FlagValue(int argc, char** argv, const char* name, uint64_t dflt) {
  const std::string eq = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], eq.c_str(), eq.size()) == 0) {
      return std::strtoull(argv[i] + eq.size(), nullptr, 10);
    }
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return dflt;
}

std::string StringFlag(int argc, char** argv, const char* name) {
  const std::string eq = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], eq.c_str(), eq.size()) == 0) {
      return argv[i] + eq.size();
    }
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) return argv[i + 1];
  }
  return "";
}

std::string OutPath(int argc, char** argv) {
  const std::string out = StringFlag(argc, argv, "--out");
  return out.empty() ? ELINK_BENCH_JSON_DEFAULT : out;
}

/// Pulls `"key": <number>` out of a baseline JSON report; 0.0 when absent.
/// The reports are written by this binary, so a full parser is not needed.
double JsonNumber(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return 0.0;
  const size_t colon = json.find(':', at + needle.size());
  if (colon == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + colon + 1, nullptr);
}

/// Peak resident set size in KiB (0 where getrusage is unavailable).
size_t PeakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<size_t>(ru.ru_maxrss) / 1024;  // Bytes on macOS.
#else
    return static_cast<size_t>(ru.ru_maxrss);  // KiB on Linux.
#endif
  }
#endif
  return 0;
}

/// Compares this run against a committed baseline report; returns false
/// (check failed) when events/sec or sends/sec regressed more than 10%.
bool CheckAgainst(const std::string& baseline_path, const FloodOutcome& flood,
                  double sends_per_sec) {
  FILE* f = std::fopen(baseline_path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
    return false;
  }
  std::string json;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    json.append(buf, got);
  }
  std::fclose(f);

  const double base_events = JsonNumber(json, "events_per_sec");
  const double base_sends = JsonNumber(json, "sends_per_sec");
  if (base_events <= 0.0) {
    std::fprintf(stderr, "baseline %s has no events_per_sec\n",
                 baseline_path.c_str());
    return false;
  }
  const double events_ratio = flood.events_per_sec / base_events;
  std::printf("check: events/sec %.0f vs baseline %.0f (%.1f%%)\n",
              flood.events_per_sec, base_events, 100.0 * events_ratio);
  bool ok = true;
  if (events_ratio < 0.9) {
    std::fprintf(stderr,
                 "FAIL: events/sec dropped more than 10%% against %s\n",
                 baseline_path.c_str());
    ok = false;
  }
  if (base_sends > 0.0) {
    const double sends_ratio = sends_per_sec / base_sends;
    std::printf("check: sends/sec  %.0f vs baseline %.0f (%.1f%%)\n",
                sends_per_sec, base_sends, 100.0 * sends_ratio);
    if (sends_ratio < 0.9) {
      std::fprintf(stderr,
                   "FAIL: sends/sec dropped more than 10%% against %s\n",
                   baseline_path.c_str());
      ok = false;
    }
  }
  if (ok) std::printf("check: OK (within 10%% of baseline)\n");
  return ok;
}

std::string ReadWholeFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return "";
  std::string json;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    json.append(buf, got);
  }
  std::fclose(f);
  return json;
}

/// Wire-codec gate: fails when encode or decode frames/sec regressed more
/// than 10% against the committed baseline report.
bool CheckWireAgainst(const std::string& baseline_path,
                      const WireOutcome& wire) {
  const std::string json = ReadWholeFile(baseline_path);
  if (json.empty()) {
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
    return false;
  }
  bool ok = true;
  const struct {
    const char* key;
    double measured;
  } gates[] = {
      {"encode_frames_per_sec", wire.encode_frames_per_sec},
      {"decode_frames_per_sec", wire.decode_frames_per_sec},
  };
  for (const auto& gate : gates) {
    const double base = JsonNumber(json, gate.key);
    if (base <= 0.0) {
      std::fprintf(stderr, "baseline %s has no %s\n", baseline_path.c_str(),
                   gate.key);
      return false;
    }
    const double ratio = gate.measured / base;
    std::printf("check: %s %.0f vs baseline %.0f (%.1f%%)\n", gate.key,
                gate.measured, base, 100.0 * ratio);
    if (ratio < 0.9) {
      std::fprintf(stderr, "FAIL: %s dropped more than 10%% against %s\n",
                   gate.key, baseline_path.c_str());
      ok = false;
    }
  }
  if (ok) std::printf("check: wire OK (within 10%% of baseline)\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t num_events = FlagValue(argc, argv, "--events", 2'000'000);
  const uint64_t num_sends = FlagValue(argc, argv, "--sends", 500'000);
  const uint64_t num_frames = FlagValue(argc, argv, "--wire-frames",
                                        2'000'000);
  const std::string out_path = OutPath(argc, argv);

  const FloodOutcome flood = DeliveryFlood(num_events);
  const FloodOutcome legacy = EventFlood(num_events);
  const double sends_per_sec = SendFlood(num_sends);
  const WireOutcome wire = WireBench(num_frames);
  const size_t peak_rss_kb = PeakRssKb();

  std::printf("events/sec          %12.0f\n", flood.events_per_sec);
  std::printf("callback events/sec %12.0f\n", legacy.events_per_sec);
  std::printf("sends/sec           %12.0f\n", sends_per_sec);
  std::printf("encode frames/sec   %12.0f (%.0f MB/s)\n",
              wire.encode_frames_per_sec, wire.encode_mb_per_sec);
  std::printf("decode frames/sec   %12.0f (%.0f MB/s)\n",
              wire.decode_frames_per_sec, wire.decode_mb_per_sec);
  std::printf("peak queue size     %12zu\n", flood.peak_queue_size);
  std::printf("peak rss kb         %12zu\n", peak_rss_kb);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"events\": %llu,\n"
               "  \"sends\": %llu,\n"
               "  \"events_per_sec\": %.0f,\n"
               "  \"callback_events_per_sec\": %.0f,\n"
               "  \"sends_per_sec\": %.0f,\n"
               "  \"peak_queue_size\": %zu,\n"
               "  \"peak_rss_kb\": %zu\n"
               "}\n",
               static_cast<unsigned long long>(num_events),
               static_cast<unsigned long long>(num_sends),
               flood.events_per_sec, legacy.events_per_sec, sends_per_sec,
               flood.peak_queue_size, peak_rss_kb);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  const std::string wire_out = StringFlag(argc, argv, "--wire-out");
  const std::string wire_path = wire_out.empty() ? "BENCH_wire.json"
                                                 : wire_out;
  FILE* wf = std::fopen(wire_path.c_str(), "w");
  if (wf == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", wire_path.c_str());
    return 1;
  }
  std::fprintf(wf,
               "{\n"
               "  \"wire_frames\": %llu,\n"
               "  \"encode_frames_per_sec\": %.0f,\n"
               "  \"decode_frames_per_sec\": %.0f,\n"
               "  \"encode_mb_per_sec\": %.1f,\n"
               "  \"decode_mb_per_sec\": %.1f\n"
               "}\n",
               static_cast<unsigned long long>(num_frames),
               wire.encode_frames_per_sec, wire.decode_frames_per_sec,
               wire.encode_mb_per_sec, wire.decode_mb_per_sec);
  std::fclose(wf);
  std::printf("wrote %s\n", wire_path.c_str());

  bool ok = true;
  const std::string baseline = StringFlag(argc, argv, "--check-against");
  if (!baseline.empty() && !CheckAgainst(baseline, flood, sends_per_sec)) {
    ok = false;
  }
  const std::string wire_baseline =
      StringFlag(argc, argv, "--check-wire-against");
  if (!wire_baseline.empty() && !CheckWireAgainst(wire_baseline, wire)) {
    ok = false;
  }
  return ok ? 0 : 1;
}
