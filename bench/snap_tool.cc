// Whole-network snapshot capture / inspection / restore-verification CLI.
//
// Three modes, one per invocation:
//
//   capture   snap_tool --protocol elink --seed 7 --out run.elsn
//             Runs the fuzz trial with a checkpoint armed at --checkpoint
//             (default: the middle of the run, counted in dispatched events)
//             and writes the ELSN archive.  --disable takes the check_fuzz
//             knob spelling ("faults,async,...").
//             Add --verify-after to immediately run the restore proof on the
//             captured archive — the single-command round-trip smoke.
//
//   info      snap_tool --info run.elsn
//             Parses the archive (including the embedded version handshake)
//             and dumps the manifest, horizon, stats totals, and section
//             sizes.  Exit 1 on a malformed or version-incompatible archive.
//
//   verify    snap_tool --verify run.elsn
//             Full restore proof (check/snapshot.h): re-derive the scenario
//             from the manifest, replay to the checkpoint, demand the
//             recaptured archive byte-identical, then demand the plain run's
//             reports match the instrumented run's.  Exit 1 on any mismatch.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "check/snapshot.h"
#include "proto/snapshot.h"

using namespace elink;
using namespace elink::bench;

namespace {

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

std::vector<uint8_t> ReadFileOrDie(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  std::fclose(f);
  return bytes;
}

void WriteFileOrDie(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr || std::fwrite(bytes.data(), 1, bytes.size(), f) !=
                          bytes.size()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fclose(f);
}

int RunInfo(const std::string& path) {
  const std::vector<uint8_t> archive = ReadFileOrDie(path);
  Result<proto::SnapshotReader> reader = proto::SnapshotReader::Parse(archive);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 reader.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu bytes, wire version %u\n", path.c_str(),
              archive.size(), reader.value().version());
  for (const std::string& name : reader.value().section_names()) {
    std::printf("  section %-12s %6zu bytes\n", name.c_str(),
                reader.value().section(name)->size());
  }
  if (const auto* body = reader.value().section(proto::kSectionManifest)) {
    const auto kv = proto::DecodeManifestSection(*body);
    if (!kv.ok()) {
      std::fprintf(stderr, "bad manifest: %s\n",
                   kv.status().ToString().c_str());
      return 1;
    }
    for (const auto& [key, value] : kv.value()) {
      std::printf("  manifest %-12s %s\n", key.c_str(), value.c_str());
    }
  }
  if (const auto* body = reader.value().section(proto::kSectionHorizon)) {
    const auto h = proto::DecodeHorizonSection(*body);
    if (!h.ok()) {
      std::fprintf(stderr, "bad horizon: %s\n", h.status().ToString().c_str());
      return 1;
    }
    std::printf("  horizon: %llu events, clock %.6f\n",
                (unsigned long long)h.value().events, h.value().now);
  }
  if (const auto* body = reader.value().section(proto::kSectionStats)) {
    const auto st = proto::DecodeStatsSection(*body);
    if (!st.ok()) {
      std::fprintf(stderr, "bad stats: %s\n", st.status().ToString().c_str());
      return 1;
    }
    std::printf("  stats: %llu units, %llu bytes on wire, %zu categories\n",
                (unsigned long long)st.value().total_units,
                (unsigned long long)st.value().total_bytes,
                st.value().categories.size());
  }
  return 0;
}

int RunVerify(const std::string& path) {
  const std::vector<uint8_t> archive = ReadFileOrDie(path);
  const Status st = check::VerifySnapshot(archive);
  if (!st.ok()) {
    std::fprintf(stderr, "restore proof FAILED for %s: %s\n", path.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("restore proof OK: replayed run is byte-identical and the "
              "checkpoint probe is unobservable\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string info = StringFlag(argc, argv, "--info");
  if (!info.empty()) return RunInfo(info);
  const std::string verify = StringFlag(argc, argv, "--verify");
  if (!verify.empty()) return RunVerify(verify);

  // Capture mode.
  const std::string proto_name =
      StringFlag(argc, argv, "--protocol", "elink");
  const Result<check::Protocol> protocol =
      check::ProtocolFromName(proto_name);
  if (!protocol.ok()) {
    std::fprintf(stderr, "%s\n", protocol.status().ToString().c_str());
    return 1;
  }
  const uint64_t seed =
      std::strtoull(StringFlag(argc, argv, "--seed", "1").c_str(), nullptr,
                    10);
  const std::string out = StringFlag(argc, argv, "--out", "snapshot.elsn");
  Result<check::ScenarioKnobs> knobs = check::ScenarioKnobs::FromDisableList(
      StringFlag(argc, argv, "--disable"));
  if (!knobs.ok()) {
    std::fprintf(stderr, "%s\n", knobs.status().ToString().c_str());
    return 1;
  }

  uint64_t checkpoint = std::strtoull(
      StringFlag(argc, argv, "--checkpoint", "0").c_str(), nullptr, 10);
  if (checkpoint == 0) {
    const uint64_t total =
        check::CountTrialEvents(protocol.value(), seed, knobs.value());
    checkpoint = total / 2 + 1;
    std::printf("trial dispatches %llu events; checkpointing at %llu\n",
                (unsigned long long)total, (unsigned long long)checkpoint);
  }

  Result<check::SnapshotCapture> cap = check::CaptureSnapshot(
      protocol.value(), seed, knobs.value(), checkpoint);
  if (!cap.ok()) {
    std::fprintf(stderr, "capture failed: %s\n",
                 cap.status().ToString().c_str());
    return 1;
  }
  if (!cap.value().outcome.ok()) {
    std::fprintf(stderr, "warning: trial reported check violations; "
                         "archive still written\n");
  }
  WriteFileOrDie(out, cap.value().archive);
  std::printf("captured %s at event %llu (%zu bytes, protocol %s, seed "
              "%llu)\n",
              out.c_str(), (unsigned long long)cap.value().checkpoint,
              cap.value().archive.size(), check::ProtocolName(protocol.value()),
              (unsigned long long)seed);

  if (HasFlag(argc, argv, "--verify-after")) return RunVerify(out);
  return 0;
}
