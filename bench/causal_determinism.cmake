# ctest driver: profiles every protocol twice with the same seed and fails
# unless the critical-path reports and collapsed-stack exports are
# byte-identical — the determinism contract of the causal id assignment.
#
# Expects -DCAUSAL_PROFILE=<path to causal_profile binary>
#         -DOUT_DIR=<scratch dir>.
file(MAKE_DIRECTORY ${OUT_DIR})
foreach(protocol elink maintenance range_query path_query)
  foreach(pass a b)
    execute_process(
      COMMAND ${CAUSAL_PROFILE} --protocol ${protocol} --seed 7 --nodes 60
              --report-out ${OUT_DIR}/${protocol}_report_${pass}.json
              --collapsed-out ${OUT_DIR}/${protocol}_${pass}.collapsed
      OUTPUT_QUIET
      RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
              "causal_profile ${protocol} pass ${pass} failed (exit ${rc})")
    endif()
  endforeach()
  foreach(suffix "report_a.json;report_b.json" "a.collapsed;b.collapsed")
    list(GET suffix 0 lhs)
    list(GET suffix 1 rhs)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              ${OUT_DIR}/${protocol}_${lhs} ${OUT_DIR}/${protocol}_${rhs}
      RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
              "same-seed ${protocol} outputs differ: ${lhs} vs ${rhs}")
    endif()
  endforeach()
endforeach()
