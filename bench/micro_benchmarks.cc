// Micro-benchmarks (google-benchmark) for the hot paths: RLS updates,
// metric distances, event-queue throughput, quadtree construction, ELink
// end-to-end, M-tree build, and range-query execution.
#include <benchmark/benchmark.h>

#include "cluster/elink.h"
#include "cluster/quadtree.h"
#include "common/rng.h"
#include "data/terrain.h"
#include "index/backbone.h"
#include "index/mtree.h"
#include "index/range_query.h"
#include "sim/event_queue.h"
#include "timeseries/rls.h"

namespace elink {
namespace {

void BM_RlsObserve(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  RlsEstimator est(k);
  Rng rng(1);
  Vector x(k);
  for (auto _ : state) {
    for (int j = 0; j < k; ++j) x[j] = rng.Uniform(-1, 1);
    est.Observe(x, rng.Uniform(-1, 1));
    benchmark::DoNotOptimize(est.coefficients());
  }
}
BENCHMARK(BM_RlsObserve)->Arg(1)->Arg(4)->Arg(8);

void BM_WeightedEuclidean(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  WeightedEuclidean metric(std::vector<double>(dim, 0.5));
  Rng rng(2);
  Feature a(dim), b(dim);
  for (int j = 0; j < dim; ++j) {
    a[j] = rng.Uniform01();
    b[j] = rng.Uniform01();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(metric.Distance(a, b));
  }
}
BENCHMARK(BM_WeightedEuclidean)->Arg(1)->Arg(4)->Arg(16);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      q.ScheduleAt(static_cast<double>((i * 7919) % 1000),
                   [&sink] { ++sink; });
    }
    q.RunAll();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueChurn);

void BM_QuadtreeBuild(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const Topology topo = MakeGridTopology(side, side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(QuadtreeDecomposition::Build(topo));
  }
}
BENCHMARK(BM_QuadtreeBuild)->Arg(16)->Arg(32);

void BM_ElinkEndToEnd(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const Topology topo = MakeGridTopology(side, side);
  Rng rng(3);
  std::vector<Feature> features;
  for (int i = 0; i < topo.num_nodes(); ++i) {
    features.push_back({rng.Uniform(0, 20)});
  }
  const WeightedEuclidean metric = WeightedEuclidean::Euclidean(1);
  ElinkConfig cfg;
  cfg.delta = 6.0;
  cfg.seed = 1;
  for (auto _ : state) {
    auto r = RunElink(topo, features, metric, cfg, ElinkMode::kImplicit);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ElinkEndToEnd)->Arg(10)->Arg(20);

struct QueryFixtureState {
  SensorDataset ds;
  Clustering clustering;
  std::vector<int> tree;
};

void BM_RangeQuery(benchmark::State& state) {
  static QueryFixtureState* fx = [] {
    auto* s = new QueryFixtureState();
    TerrainConfig tcfg;
    tcfg.num_nodes = 400;
    tcfg.radio_range_fraction = 0.08;
    s->ds = std::move(MakeTerrainDataset(tcfg)).value();
    ElinkConfig cfg;
    cfg.delta = 0.2 * FeatureDiameter(s->ds);
    cfg.seed = 1;
    s->clustering =
        std::move(RunElink(s->ds, cfg, ElinkMode::kImplicit)).value()
            .clustering;
    s->tree = BuildClusterTrees(s->clustering, s->ds.topology.adjacency);
    return s;
  }();
  const double delta = 0.2 * FeatureDiameter(fx->ds);
  const ClusterIndex index = ClusterIndex::Build(
      fx->clustering, fx->tree, fx->ds.features, *fx->ds.metric);
  const Backbone backbone =
      Backbone::Build(fx->clustering, fx->ds.topology.adjacency, nullptr,
                      &fx->ds.features, fx->ds.metric.get());
  RangeQueryEngine engine(fx->clustering, index, backbone, fx->ds.features,
                          *fx->ds.metric, delta);
  Rng rng(7);
  for (auto _ : state) {
    const Feature& q = fx->ds.features[rng.UniformInt(400)];
    benchmark::DoNotOptimize(engine.Query(0, q, 0.8 * delta));
  }
}
BENCHMARK(BM_RangeQuery);

void BM_MTreeBuild(benchmark::State& state) {
  static QueryFixtureState* fx = [] {
    auto* s = new QueryFixtureState();
    TerrainConfig tcfg;
    tcfg.num_nodes = 400;
    tcfg.radio_range_fraction = 0.08;
    s->ds = std::move(MakeTerrainDataset(tcfg)).value();
    ElinkConfig cfg;
    cfg.delta = 0.2 * FeatureDiameter(s->ds);
    cfg.seed = 1;
    s->clustering =
        std::move(RunElink(s->ds, cfg, ElinkMode::kImplicit)).value()
            .clustering;
    s->tree = BuildClusterTrees(s->clustering, s->ds.topology.adjacency);
    return s;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ClusterIndex::Build(
        fx->clustering, fx->tree, fx->ds.features, *fx->ds.metric));
  }
}
BENCHMARK(BM_MTreeBuild);

}  // namespace
}  // namespace elink

BENCHMARK_MAIN();
