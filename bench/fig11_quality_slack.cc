// Fig. 11 — Clustering quality vs slack Delta on the Tao stream.
//
// Paper shape: as the slack grows (shrinking the effective clustering
// threshold to delta - 2*Delta and loosening maintenance), the number of
// clusters grows — quality traded for the Fig. 10 communication savings.
#include <vector>

#include "bench/bench_util.h"
#include "cluster/maintenance.h"
#include "data/tao.h"
#include "timeseries/seasonal.h"

using namespace elink;
using namespace elink::bench;

int main() {
  TaoConfig tao;
  tao.eval_days = 14;
  const SensorDataset ds = Unwrap(MakeTaoDataset(tao), "tao");
  const int n = ds.topology.num_nodes();
  const double delta = 0.35 * FeatureDiameter(ds);

  std::printf("Fig. 11 - clustering quality vs slack, Tao-like stream "
              "(%d buoys, %d live days, delta = %.3f)\n\n",
              n, tao.eval_days, delta);
  PrintRow({"slack/delta", "initial", "after_stream", "detaches"});

  for (double slack_frac : {0.0, 0.05, 0.1, 0.2, 0.3, 0.45}) {
    const double slack = slack_frac * delta;
    ElinkConfig ecfg;
    ecfg.delta = delta;
    ecfg.slack = slack;
    ecfg.seed = 10;
    const ElinkResult clustered =
        Unwrap(RunElink(ds, ecfg, ElinkMode::kImplicit), "elink");

    MaintenanceConfig mcfg;
    mcfg.delta = delta;
    mcfg.slack = slack;
    MaintenanceSession session(ds.topology, clustered.clustering, ds.features,
                               ds.metric, mcfg);
    std::vector<SeasonalArModel> models;
    models.reserve(n);
    for (int i = 0; i < n; ++i) {
      models.push_back(Unwrap(
          SeasonalArModel::Train(ds.train_streams[i],
                                 tao.measurements_per_day),
          "train"));
    }
    const int steps = tao.eval_days * tao.measurements_per_day;
    for (int t = 0; t < steps; ++t) {
      for (int i = 0; i < n; ++i) {
        models[i].Observe(ds.streams[i][t]);
        if (t % 6 == 5) session.UpdateFeature(i, models[i].Feature());
      }
    }
    PrintRow({Cell(slack_frac, 2),
              Cell(clustered.clustering.num_clusters()),
              Cell(session.clustering().num_clusters()),
              Cell(session.detaches())});
  }
  std::printf("\nexpected shape: cluster count grows with slack "
              "(delta_eff = delta - 2*slack shrinks)\n");
  return 0;
}
