# ctest driver: runs trace_run twice with the same seed and fails unless the
# Chrome-trace, JSONL, and RunReport outputs are byte-identical.
#
# Expects -DTRACE_RUN=<path to trace_run binary> -DOUT_DIR=<scratch dir>.
file(MAKE_DIRECTORY ${OUT_DIR})
foreach(pass a b)
  execute_process(
    COMMAND ${TRACE_RUN} --seed 11
            --trace-out ${OUT_DIR}/trace_${pass}.json
            --jsonl-out ${OUT_DIR}/trace_${pass}.jsonl
            --report-out ${OUT_DIR}/report_${pass}.json
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trace_run pass ${pass} failed (exit ${rc})")
  endif()
endforeach()

foreach(pair
    "trace_a.json;trace_b.json"
    "trace_a.jsonl;trace_b.jsonl"
    "report_a.json;report_b.json")
  list(GET pair 0 lhs)
  list(GET pair 1 rhs)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUT_DIR}/${lhs} ${OUT_DIR}/${rhs}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "same-seed outputs differ: ${lhs} vs ${rhs}")
  endif()
endforeach()
