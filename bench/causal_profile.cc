// One-command convergence profiler over the causal-tracing seam.
//
// Attaches a telemetry + tracer chain to one protocol run, rebuilds the
// causal forest (src/obs/causal.h), and reports where the run's latency and
// cost actually sit:
//
//   --protocol NAME     elink (default) | maintenance | range_query |
//                       path_query
//   --seed N            protocol seed (default 11)
//   --nodes N           deployment size (default 120)
//   --trace-cap N       trace ring capacity in events (default 262144)
//   --report-out FILE   RunReport JSON with "critical_path" and "trace"
//                       sections (byte-identical across same-seed runs)
//   --collapsed-out FILE collapsed-stack profile (speedscope / flamegraph.pl)
//   --collapsed-weight W events | units (default) | bytes
//   --trace-out FILE    Chrome trace with causal flow arrows
//
//   --sweep             instead of one profile: causal-depth vs N for
//                       explicit ELink, N = 100..800 — the empirical check
//                       of Theorem 1's O(sqrt(N) log N) convergence bound
//   --csv-out FILE      write the sweep table as CSV
//
// stdout gets a human summary: the critical path step by step, depth/width
// statistics, and ring utilization.  Exit is nonzero if the causal graph is
// structurally broken (orphans without overflow).
#include <cmath>
#include <cstdint>
#include <optional>

#include "bench/bench_util.h"
#include "cluster/clustering.h"
#include "cluster/maintenance_protocol.h"
#include "common/rng.h"
#include "data/terrain.h"
#include "index/backbone.h"
#include "index/mtree.h"
#include "index/path_query_protocol.h"
#include "index/query_protocol.h"
#include "obs/causal.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

using namespace elink;
using namespace elink::bench;

namespace {

void WriteOrDie(const std::string& path, const std::string& body) {
  std::ofstream f(path, std::ios::binary);
  f << body;
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::abort();
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

SensorDataset MakeDeployment(int nodes) {
  TerrainConfig tcfg;
  tcfg.num_nodes = nodes;
  tcfg.radio_range_fraction = 0.18;
  tcfg.seed = 9;  // Fixed: --seed varies the protocol, not the deployment.
  return Unwrap(MakeTerrainDataset(tcfg), "terrain");
}

// The fault-free world the maintenance and query protocols start from,
// exactly as the fuzz runner builds it.
struct World {
  Clustering clustering;
  std::vector<int> tree_parent;
  std::optional<ClusterIndex> index;
  std::optional<Backbone> backbone;
};

World BuildWorld(const SensorDataset& ds, double delta, uint64_t seed) {
  ElinkConfig cfg;
  cfg.delta = delta;
  cfg.synchronous = true;
  cfg.seed = seed;
  ElinkResult r = Unwrap(RunElink(ds, cfg, ElinkMode::kExplicit), "elink");
  World w;
  w.clustering = std::move(r.clustering);
  w.tree_parent = BuildClusterTrees(w.clustering, ds.topology.adjacency);
  w.index = ClusterIndex::Build(w.clustering, w.tree_parent, ds.features,
                                *ds.metric);
  w.backbone = Backbone::Build(w.clustering, ds.topology.adjacency, nullptr,
                               &ds.features, ds.metric.get());
  return w;
}

// Runs `protocol` once with `telemetry` attached and returns the final
// MessageStats ledger for the report.
MessageStats RunProfiled(const std::string& protocol, const SensorDataset& ds,
                         double delta, uint64_t seed,
                         obs::RunTelemetry* telemetry) {
  if (protocol == "elink") {
    ElinkConfig cfg;
    cfg.delta = delta;
    cfg.seed = seed;
    cfg.observer = telemetry;
    return Unwrap(RunElink(ds, cfg, ElinkMode::kExplicit), "elink").stats;
  }
  const int n = ds.topology.num_nodes();
  const World w = BuildWorld(ds, delta, seed);
  if (protocol == "maintenance") {
    MaintenanceConfig mcfg;
    mcfg.delta = delta;
    DistributedMaintenance dm(ds.topology, w.clustering, ds.features,
                              ds.metric, mcfg, /*synchronous=*/true, seed);
    dm.set_observer(telemetry);
    // A deterministic update mix: mostly small drift, some jumps toward
    // another node's feature to provoke escalation and re-merge.
    Rng rng(seed);
    const int updates = n / 8 + 4;
    for (int u = 0; u < updates; ++u) {
      const int node = static_cast<int>(rng.UniformInt(n));
      Feature f = dm.CurrentFeatures()[node];
      if (rng.Bernoulli(0.5)) {
        for (double& v : f) v += rng.Uniform(-0.4, 0.4) * delta;
      } else {
        const Feature& target = ds.features[rng.UniformInt(n)];
        for (size_t k = 0; k < f.size(); ++k) {
          f[k] = target[k] + rng.Uniform(-0.1, 0.1) * delta;
        }
      }
      dm.ApplyUpdate(node, f);
    }
    dm.RunToQuiescence();
    return dm.stats();
  }
  if (protocol == "range_query") {
    DistributedRangeQuery::ProtocolOptions opt;
    opt.seed = seed;
    opt.observer = telemetry;
    DistributedRangeQuery q(ds.topology, w.clustering, *w.index, *w.backbone,
                            ds.features, ds.metric, opt);
    Rng rng(seed);
    const int initiator = static_cast<int>(rng.UniformInt(n));
    Feature center = ds.features[rng.UniformInt(n)];
    for (double& v : center) v += rng.Uniform(-0.3, 0.3) * delta;
    const DistributedQueryOutcome o =
        Unwrap(q.Run(initiator, center, 0.8 * delta), "range_query");
    return o.stats;
  }
  if (protocol == "path_query") {
    PathProtocolOptions opt;
    opt.seed = seed;
    opt.observer = telemetry;
    DistributedPathQuery q(ds.topology, w.clustering, *w.index, *w.backbone,
                           ds.features, ds.metric, opt);
    Rng rng(seed);
    const int source = static_cast<int>(rng.UniformInt(n));
    const int destination = static_cast<int>(rng.UniformInt(n));
    Feature danger = ds.features[rng.UniformInt(n)];
    for (double& v : danger) v += rng.Uniform(-0.3, 0.3) * delta;
    const PathQueryResult r = Unwrap(
        q.Run(source, destination, danger, 0.5 * delta), "path_query");
    return r.stats;
  }
  std::fprintf(stderr,
               "unknown --protocol '%s' (expected elink, maintenance, "
               "range_query, path_query)\n",
               protocol.c_str());
  std::exit(1);
}

void PrintSummary(const obs::CausalGraph& g, const obs::Tracer& tracer) {
  const obs::CausalGraph::DepthStats s = g.Stats();
  std::printf("causal forest: %zu nodes (%llu sends, %llu delivers, "
              "%llu drops, %llu timers), %llu genesis, %llu orphans\n",
              g.nodes().size(), (unsigned long long)s.sends,
              (unsigned long long)s.delivers, (unsigned long long)s.drops,
              (unsigned long long)s.timers, (unsigned long long)s.genesis,
              (unsigned long long)s.orphans);
  uint64_t max_width = 0;
  for (const uint64_t w : s.width_by_depth) {
    if (w > max_width) max_width = w;
  }
  std::printf("depth: max %u causal, max %u message rounds, peak width %llu; "
              "run end t=%.6g\n",
              s.max_depth, s.max_msg_depth, (unsigned long long)max_width,
              g.run_end_time());
  std::printf("trace ring: %zu/%zu retained, %llu overwritten\n",
              tracer.size(), tracer.capacity(),
              (unsigned long long)tracer.overwritten());
  if (tracer.overwritten() > 0) {
    std::fprintf(stderr,
                 "warning: trace ring overflowed (%llu events lost); the "
                 "critical path below covers a suffix of the run\n",
                 (unsigned long long)tracer.overwritten());
  }

  const std::vector<uint32_t> path = g.CriticalPath();
  std::printf("critical path (%zu steps):\n", path.size());
  double prev_end = 0.0;
  for (const uint32_t idx : path) {
    const obs::CausalNode& n = g.nodes()[idx];
    const char* kind = n.kind == obs::CausalNode::Kind::kSend      ? "send"
                       : n.kind == obs::CausalNode::Kind::kDeliver ? "deliver"
                       : n.kind == obs::CausalNode::Kind::kDrop    ? "drop"
                                                                   : "timer";
    std::printf("  t=%-10.6g +%-9.6g %-7s node %-4d", n.time,
                n.end_time - prev_end, kind, n.node);
    prev_end = n.end_time;
    if (n.peer >= 0) std::printf(" -> %-4d", n.peer);
    if (n.kind == obs::CausalNode::Kind::kTimer) {
      std::printf(" timer_id=%lld", n.value);
    } else {
      std::printf(" %s", g.label(n.label).c_str());
    }
    if (n.hops > 0) std::printf(" (%u hops)", n.hops);
    if (n.units > 0) std::printf(" units=%llu", (unsigned long long)n.units);
    std::printf("\n");
  }
}

int RunProfile(int argc, char** argv) {
  const std::string protocol =
      StringFlag(argc, argv, "--protocol", "elink");
  const uint64_t seed = static_cast<uint64_t>(
      std::atoll(StringFlag(argc, argv, "--seed", "11").c_str()));
  const int nodes =
      std::atoi(StringFlag(argc, argv, "--nodes", "120").c_str());
  const long long trace_cap =
      std::atoll(StringFlag(argc, argv, "--trace-cap", "262144").c_str());
  const std::string report_out = StringFlag(argc, argv, "--report-out");
  const std::string collapsed_out =
      StringFlag(argc, argv, "--collapsed-out");
  const std::string weight_name =
      StringFlag(argc, argv, "--collapsed-weight", "units");
  const std::string trace_out = StringFlag(argc, argv, "--trace-out");
  if (nodes < 4 || trace_cap <= 0) {
    std::fprintf(stderr, "--nodes must be >= 4 and --trace-cap positive\n");
    return 1;
  }
  obs::CausalGraph::Weight weight = obs::CausalGraph::Weight::kUnits;
  if (weight_name == "events") {
    weight = obs::CausalGraph::Weight::kEvents;
  } else if (weight_name == "bytes") {
    weight = obs::CausalGraph::Weight::kBytes;
  } else if (weight_name != "units") {
    std::fprintf(stderr, "--collapsed-weight must be events|units|bytes\n");
    return 1;
  }

  const SensorDataset ds = MakeDeployment(nodes);
  const double delta = 0.3 * FeatureDiameter(ds);

  obs::Tracer tracer(static_cast<size_t>(trace_cap));
  obs::RunTelemetry telemetry;
  telemetry.set_next(&tracer);
  const MessageStats stats =
      RunProfiled(protocol, ds, delta, seed, &telemetry);

  const obs::CausalGraph g = obs::CausalGraph::Build(tracer);
  std::printf("causal profile: %s, %d nodes, seed %llu\n", protocol.c_str(),
              nodes, (unsigned long long)seed);
  PrintSummary(g, tracer);

  if (!report_out.empty()) {
    obs::RunReport report = telemetry.MakeReport(protocol, seed, stats);
    report.SetParam("nodes", nodes);
    report.SetParam("delta", delta);
    report.SetParam("trace_cap", trace_cap);
    report.SetSectionJson("critical_path", g.CriticalPathJson());
    report.SetSectionJson("trace", tracer.StatsJson());
    WriteOrDie(report_out, report.ToJson());
  }
  if (!collapsed_out.empty()) {
    WriteOrDie(collapsed_out, g.ExportCollapsed(weight));
  }
  if (!trace_out.empty()) {
    WriteOrDie(trace_out, tracer.ExportChromeTrace());
  }
  // A structurally broken graph (lost causes without ring overflow) is a
  // tracing bug, not a profile: fail loudly so CI notices.
  if (g.complete() && g.orphans() != 0) {
    std::fprintf(stderr, "error: %llu orphan(s) in a complete trace\n",
                 (unsigned long long)g.orphans());
    return 1;
  }
  return 0;
}

// Causal message depth (send->deliver generations, the paper's round
// complexity) against Theorem 1's O(sqrt(N) log N) convergence bound.  The
// last column is depth / (sqrt(N) ln N): bounded (non-increasing in the
// tail) iff the empirical depth respects the theorem.
int RunSweep(int argc, char** argv) {
  const uint64_t seed = static_cast<uint64_t>(
      std::atoll(StringFlag(argc, argv, "--seed", "11").c_str()));
  const long long trace_cap =
      std::atoll(StringFlag(argc, argv, "--trace-cap", "1048576").c_str());
  const std::string csv_out = StringFlag(argc, argv, "--csv-out");

  std::string csv =
      "nodes,trace_events,max_depth,max_msg_depth,end_time,"
      "sqrt_n_log_n,depth_over_bound\n";
  PrintRow({"nodes", "events", "depth", "msg_depth", "end_time",
            "sqrt(N)lnN", "ratio"});
  for (int n = 100; n <= 800; n += 100) {
    const SensorDataset ds = MakeDeployment(n);
    const double delta = 0.3 * FeatureDiameter(ds);
    obs::Tracer tracer(static_cast<size_t>(trace_cap));
    obs::RunTelemetry telemetry;
    telemetry.set_next(&tracer);
    ElinkConfig cfg;
    cfg.delta = delta;
    cfg.seed = seed;
    cfg.observer = &telemetry;
    (void)Unwrap(RunElink(ds, cfg, ElinkMode::kExplicit), "elink");
    if (tracer.overwritten() > 0) {
      std::fprintf(stderr,
                   "warning: N=%d overflowed the trace ring (%llu lost); "
                   "raise --trace-cap for exact depths\n",
                   n, (unsigned long long)tracer.overwritten());
    }
    const obs::CausalGraph g = obs::CausalGraph::Build(tracer);
    const obs::CausalGraph::DepthStats s = g.Stats();
    const double bound = std::sqrt(static_cast<double>(n)) *
                         std::log(static_cast<double>(n));
    const double ratio = static_cast<double>(s.max_msg_depth) / bound;
    char row[160];
    std::snprintf(row, sizeof(row), "%d,%llu,%u,%u,%.6g,%.6g,%.6g\n", n,
                  (unsigned long long)tracer.total_recorded(), s.max_depth,
                  s.max_msg_depth, g.run_end_time(), bound, ratio);
    csv += row;
    PrintRow({Cell(n), Cell(tracer.total_recorded()),
              Cell(static_cast<int>(s.max_depth)),
              Cell(static_cast<int>(s.max_msg_depth)),
              Cell(g.run_end_time(), 1), Cell(bound, 1), Cell(ratio, 3)});
  }
  if (!csv_out.empty()) WriteOrDie(csv_out, csv);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sweep") == 0) return RunSweep(argc, argv);
  }
  return RunProfile(argc, argv);
}
