// Shared helpers for the figure-reproduction harnesses.
//
// Each bench binary regenerates one table/figure of the paper's Section 8 as
// a plain-text table: one row per x-axis point, one column per algorithm.
// The EXPERIMENTS.md file records how each output maps onto the original
// figure.
#ifndef ELINK_BENCH_BENCH_UTIL_H_
#define ELINK_BENCH_BENCH_UTIL_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "baselines/hierarchical.h"
#include "baselines/spanning_forest.h"
#include "baselines/spectral.h"
#include "cluster/elink.h"
#include "common/status.h"
#include "data/dataset.h"
#include "index/backbone.h"
#include "index/mtree.h"
#include "obs/run_report.h"
#include "proto/wire.h"

namespace elink {
namespace bench {

/// Dies loudly on error results: bench harnesses have no recovery path.
template <typename T>
T Unwrap(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

/// Prints a row of right-aligned cells under 14-char columns.
inline void PrintRow(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%14s", c.c_str());
  std::printf("\n");
}

inline std::string Cell(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string Cell(uint64_t v) { return std::to_string(v); }
inline std::string Cell(int v) { return std::to_string(v); }

/// Runs independent trials across a small thread pool.
///
/// Trials are identified by index and must be self-contained: each writes
/// its outcome into a per-index slot the caller owns, and the caller merges
/// slots in index order after Run returns.  Because the merge order is the
/// submission order — never the completion order — the output is identical
/// for any thread count, including 1; `--threads` changes wall-clock only.
class ParallelTrialRunner {
 public:
  /// `threads` < 1 is clamped to 1 (serial).
  explicit ParallelTrialRunner(int threads)
      : threads_(threads < 1 ? 1 : threads) {}

  /// Invokes fn(0) .. fn(count-1), each exactly once, and blocks until all
  /// have returned.  With one thread (or one trial) this degenerates to a
  /// plain loop on the calling thread.
  void Run(int count, const std::function<void(int)>& fn) const {
    if (count <= 0) return;
    const int workers = threads_ < count ? threads_ : count;
    if (workers == 1) {
      for (int i = 0; i < count; ++i) fn(i);
      return;
    }
    std::atomic<int> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&next, count, &fn] {
        for (int i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
          fn(i);
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  int threads() const { return threads_; }

 private:
  int threads_;
};

/// Parses `--threads N` / `--threads=N` from a harness command line.
/// Defaults to 1: the serial and parallel paths print identical bytes, so
/// parallelism is strictly an opt-in for wall-clock.
inline int ThreadsFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      return std::atoi(argv[i] + 10);
    }
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      return std::atoi(argv[i + 1]);
    }
  }
  return 1;
}

/// Parses a `--name value` / `--name=value` string flag; empty when absent.
inline std::string StringFlag(int argc, char** argv, const char* name,
                              const std::string& default_value = "") {
  const std::string eq = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], eq.c_str(), eq.size()) == 0) {
      return argv[i] + eq.size();
    }
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
  }
  return default_value;
}

/// Writes run reports as JSON lines (one RunReport object per line), the
/// uniform machine-readable sidecar next to a bench's plain-text table.
/// Dies loudly on I/O failure, like Unwrap.
inline void WriteRunReports(const std::string& path,
                            const std::vector<obs::RunReport>& reports) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::abort();
  }
  for (const obs::RunReport& r : reports) f << r.ToJson();
  if (!f) {
    std::fprintf(stderr, "short write to %s\n", path.c_str());
    std::abort();
  }
  std::fprintf(stderr, "wrote %zu run report(s) to %s\n", reports.size(),
               path.c_str());
}

/// The four Section-8.3 clustering algorithms run on one dataset at one
/// delta: cluster counts and total clustering communication (paper message
/// units).  ELink cost includes the leader-backbone construction, as
/// Section 8.2 prescribes.
struct AlgorithmOutcomes {
  int elink_clusters = 0;
  uint64_t elink_implicit_units = 0;
  uint64_t elink_explicit_units = 0;
  int spectral_clusters = 0;
  int hierarchical_clusters = 0;
  uint64_t hierarchical_units = 0;
  int forest_clusters = 0;
  uint64_t forest_units = 0;
  // Real bytes-on-wire alongside the paper's unit counts: the ELink figures
  // come straight off the simulated network; the baselines come from their
  // cost models' framed-message estimates.
  uint64_t elink_implicit_bytes = 0;
  uint64_t elink_explicit_bytes = 0;
  uint64_t hierarchical_bytes = 0;
  uint64_t forest_bytes = 0;
  Clustering elink_clustering;
  Clustering hierarchical_clustering;
  Clustering forest_clustering;
};

/// Runs all four algorithms.  `run_spectral` can be disabled for large
/// sweeps where the centralized baseline dominates runtime.
inline AlgorithmOutcomes RunAllAlgorithms(const SensorDataset& ds,
                                          double delta, uint64_t seed,
                                          bool run_spectral = true) {
  AlgorithmOutcomes out;

  ElinkConfig ecfg;
  ecfg.delta = delta;
  ecfg.seed = seed;
  ElinkResult imp = Unwrap(RunElink(ds, ecfg, ElinkMode::kImplicit), "elink");
  out.elink_clusters = imp.clustering.num_clusters();
  MessageStats backbone_cost;
  Backbone::Build(imp.clustering, ds.topology.adjacency, &backbone_cost);
  out.elink_implicit_units =
      imp.stats.total_units() + backbone_cost.total_units();
  // Backbone construction ships one leader id per hop; its cost model does
  // not frame messages itself, so charge the minimal one-int frame here.
  const uint64_t backbone_bytes =
      backbone_cost.total_units() * wire::NominalFrameSize(1, 0);
  out.elink_implicit_bytes = imp.stats.total_bytes() + backbone_bytes;
  out.elink_clustering = std::move(imp.clustering);

  ElinkResult exp =
      Unwrap(RunElink(ds, ecfg, ElinkMode::kExplicit), "elink-explicit");
  out.elink_explicit_units =
      exp.stats.total_units() + backbone_cost.total_units();
  out.elink_explicit_bytes = exp.stats.total_bytes() + backbone_bytes;

  if (run_spectral) {
    SpectralConfig scfg;
    scfg.delta = delta;
    scfg.seed = seed;
    SpectralResult sp = Unwrap(
        SpectralDeltaClustering(ds.topology.adjacency, ds.features,
                                *ds.metric, scfg),
        "spectral");
    out.spectral_clusters = sp.clustering.num_clusters();
  }

  HierarchicalResult hc = Unwrap(
      HierarchicalClustering(ds.topology.adjacency, ds.features, *ds.metric,
                             delta),
      "hierarchical");
  out.hierarchical_clusters = hc.clustering.num_clusters();
  out.hierarchical_units = hc.stats.total_units();
  out.hierarchical_bytes = hc.stats.total_bytes();
  out.hierarchical_clustering = std::move(hc.clustering);

  SpanningForestResult sf = Unwrap(
      SpanningForestClustering(ds.topology.adjacency, ds.features, *ds.metric,
                               delta),
      "spanning-forest");
  out.forest_clusters = sf.clustering.num_clusters();
  out.forest_units = sf.stats.total_units();
  out.forest_bytes = sf.stats.total_bytes();
  out.forest_clustering = std::move(sf.clustering);
  return out;
}

}  // namespace bench
}  // namespace elink

#endif  // ELINK_BENCH_BENCH_UTIL_H_
