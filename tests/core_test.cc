// Tests for the ClusteredSensorNetwork facade: end-to-end build, query
// exactness, maintenance behavior, and ledger consistency.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/clustered_network.h"
#include "data/synthetic.h"
#include "data/terrain.h"

namespace elink {
namespace {

SensorDataset TerrainDs() {
  TerrainConfig cfg;
  cfg.num_nodes = 200;
  cfg.radio_range_fraction = 0.1;
  cfg.seed = 3;
  return std::move(MakeTerrainDataset(cfg)).value();
}

ClusteredSensorNetwork::Options DefaultOptions(const SensorDataset& ds,
                                               double frac = 0.25) {
  ClusteredSensorNetwork::Options opts;
  opts.delta = frac * FeatureDiameter(ds);
  opts.slack = 0.1 * opts.delta;
  opts.seed = 5;
  return opts;
}

TEST(ClusteredNetworkTest, BuildProducesValidClustering) {
  const SensorDataset ds = TerrainDs();
  auto opts = DefaultOptions(ds);
  auto net = ClusteredSensorNetwork::Build(ds, opts);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  EXPECT_EQ(net.value()->num_nodes(), 200);
  EXPECT_GE(net.value()->num_clusters(), 1);
  EXPECT_TRUE(ValidateDeltaClustering(net.value()->clustering(),
                                      ds.topology.adjacency, ds.features,
                                      *ds.metric, opts.delta)
                  .ok());
  EXPECT_GT(net.value()->clustering_cost_units(), 0u);
}

TEST(ClusteredNetworkTest, RangeQueriesMatchScan) {
  const SensorDataset ds = TerrainDs();
  auto net_r = ClusteredSensorNetwork::Build(ds, DefaultOptions(ds));
  ASSERT_TRUE(net_r.ok());
  auto& net = *net_r.value();
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const Feature q = {rng.Uniform(175.0, 1996.0)};
    const double r = rng.Uniform(0.2, 1.0) * net.delta();
    const RangeQueryResult res =
        net.RangeQuery(static_cast<int>(rng.UniformInt(200)), q, r);
    std::vector<int> expected;
    for (int i = 0; i < 200; ++i) {
      if (ds.metric->Distance(ds.features[i], q) <= r + 1e-12) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(res.matches, expected);
  }
}

TEST(ClusteredNetworkTest, UpdatesKeepInvariantAndQueriesFollow) {
  const SensorDataset ds = TerrainDs();
  auto net_r = ClusteredSensorNetwork::Build(ds, DefaultOptions(ds));
  ASSERT_TRUE(net_r.ok());
  auto& net = *net_r.value();
  Rng rng(11);
  std::vector<Feature> current = ds.features;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 200; ++i) {
      current[i][0] += rng.Normal(0.0, 3.0);
      net.UpdateFeature(i, current[i]);
    }
  }
  EXPECT_TRUE(net.ValidateInvariant().ok());
  // Queries now answer against the *updated* features.
  const Feature q = current[42];
  const RangeQueryResult res = net.RangeQuery(0, q, 0.5 * net.delta());
  std::vector<int> expected;
  for (int i = 0; i < 200; ++i) {
    if (ds.metric->Distance(current[i], q) <= 0.5 * net.delta() + 1e-12) {
      expected.push_back(i);
    }
  }
  EXPECT_EQ(res.matches, expected);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(net.feature(i), current[i]);
  }
}

TEST(ClusteredNetworkTest, SafePathAgreesWithSafety) {
  const SensorDataset ds = TerrainDs();
  auto net_r = ClusteredSensorNetwork::Build(ds, DefaultOptions(ds));
  ASSERT_TRUE(net_r.ok());
  auto& net = *net_r.value();
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const int src = static_cast<int>(rng.UniformInt(200));
    const int dst = static_cast<int>(rng.UniformInt(200));
    const Feature danger = {rng.Uniform(175.0, 1996.0)};
    const double gamma = rng.Uniform(0.05, 0.3) * FeatureDiameter(ds);
    const PathQueryResult res = net.SafePath(src, dst, danger, gamma);
    if (res.found) {
      EXPECT_EQ(res.path.front(), src);
      EXPECT_EQ(res.path.back(), dst);
      for (int node : res.path) {
        EXPECT_GE(ds.metric->Distance(ds.features[node], danger),
                  gamma - 1e-9);
      }
    }
  }
}

TEST(ClusteredNetworkTest, DistributedQueriesMatchEngines) {
  const SensorDataset ds = TerrainDs();
  auto net_r = ClusteredSensorNetwork::Build(ds, DefaultOptions(ds));
  ASSERT_TRUE(net_r.ok());
  auto& net = *net_r.value();
  Rng rng(19);
  for (int trial = 0; trial < 5; ++trial) {
    const Feature q = {rng.Uniform(175.0, 1996.0)};
    const double r = rng.Uniform(0.2, 1.0) * net.delta();
    const int initiator = static_cast<int>(rng.UniformInt(200));
    const RangeQueryResult engine = net.RangeQuery(initiator, q, r);
    auto dist = net.RangeQueryDistributed(initiator, q, r);
    ASSERT_TRUE(dist.ok()) << dist.status().ToString();
    EXPECT_EQ(dist.value().match_count,
              static_cast<long long>(engine.matches.size()));
  }
  for (int trial = 0; trial < 5; ++trial) {
    const int src = static_cast<int>(rng.UniformInt(200));
    const int dst = static_cast<int>(rng.UniformInt(200));
    const Feature danger = {rng.Uniform(175.0, 1996.0)};
    const double gamma = rng.Uniform(0.05, 0.3) * FeatureDiameter(ds);
    const PathQueryResult engine = net.SafePath(src, dst, danger, gamma);
    auto dist = net.SafePathDistributed(src, dst, danger, gamma);
    ASSERT_TRUE(dist.ok()) << dist.status().ToString();
    EXPECT_EQ(dist.value().found, engine.found);
    EXPECT_EQ(dist.value().path, engine.path);
  }
}

TEST(ClusteredNetworkTest, LedgerAccumulatesAcrossPhases) {
  const SensorDataset ds = TerrainDs();
  auto net_r = ClusteredSensorNetwork::Build(ds, DefaultOptions(ds));
  ASSERT_TRUE(net_r.ok());
  auto& net = *net_r.value();
  const uint64_t after_build = net.total_stats().total_units();
  EXPECT_GE(after_build, net.clustering_cost_units());
  net.RangeQuery(0, ds.features[0], 0.5 * net.delta());
  EXPECT_GT(net.total_stats().total_units(), after_build);
}

TEST(ClusteredNetworkTest, ExplicitAsynchronousBuild) {
  SyntheticConfig scfg;
  scfg.num_nodes = 120;
  scfg.seed = 17;
  const SensorDataset ds = std::move(MakeSyntheticDataset(scfg)).value();
  ClusteredSensorNetwork::Options opts;
  opts.delta = 0.3 * FeatureDiameter(ds);
  opts.mode = ElinkMode::kExplicit;
  opts.synchronous = false;
  auto net = ClusteredSensorNetwork::Build(ds, opts);
  ASSERT_TRUE(net.ok());
  EXPECT_TRUE(ValidateDeltaClustering(net.value()->clustering(),
                                      ds.topology.adjacency, ds.features,
                                      *ds.metric, opts.delta)
                  .ok());
}

TEST(ClusteredNetworkTest, RejectsDatasetWithoutMetric) {
  SensorDataset ds;
  ds.topology = MakeGridTopology(2, 2);
  ds.features = {{0.0}, {0.0}, {0.0}, {0.0}};
  ClusteredSensorNetwork::Options opts;
  EXPECT_FALSE(ClusteredSensorNetwork::Build(ds, opts).ok());
}

}  // namespace
}  // namespace elink
