// Thread-safety stress for the serving layer: many client threads, a tiny
// cache (constant eviction pressure), and a writer republishing state while
// queries are in flight.  Run under TSan/ASan/UBSan in CI; the assertions
// here are structural (counter consistency, bounded residency, sorted
// answers) — answer-level coherence is serve_parity_test's job.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/clustered_network.h"
#include "data/terrain.h"
#include "serve/frontend.h"
#include "serve/result_cache.h"
#include "serve/session.h"
#include "serve/workload.h"

namespace elink {
namespace serve {
namespace {

SensorDataset StressDs() {
  TerrainConfig cfg;
  cfg.num_nodes = 120;
  cfg.radio_range_fraction = 0.12;
  cfg.seed = 21;
  return std::move(MakeTerrainDataset(cfg)).value();
}

TEST(ServeStressTest, ConcurrentClientsDuringPublishesAndEviction) {
  const SensorDataset ds = StressDs();
  ClusteredSensorNetwork::Options nopts;
  nopts.delta = 0.3 * FeatureDiameter(ds);
  nopts.seed = 5;
  auto net = std::move(ClusteredSensorNetwork::Build(ds, nopts)).value();

  ServeFrontend::Options fopt;
  fopt.cache.shards = 2;
  fopt.cache.capacity_per_shard = 4;  // Tiny: every client fights for slots.
  ServeSession session(net.get(), fopt);

  WorkloadConfig wcfg;
  wcfg.num_clients = 6;
  wcfg.ops_per_client = 150;
  wcfg.predicate_pool = 24;  // 3x the cache capacity: guaranteed eviction.
  wcfg.unique_fraction = 0.05;
  WorkloadGenerator gen(ds.features, ds.topology.num_nodes(), wcfg, 99);

  std::atomic<bool> done{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < wcfg.num_clients; ++c) {
    clients.emplace_back([&, c] {
      const std::vector<WorkloadOp> ops = gen.ClientOps(c);
      int pass = 0;
      do {
        for (const WorkloadOp& op : ops) {
          if (op.is_range) {
            const ServedRange r =
                session.frontend().Range(op.feature, op.scalar);
            EXPECT_TRUE(std::is_sorted(r.answer.matches.begin(),
                                       r.answer.matches.end()));
          } else {
            const ServedPath p = session.frontend().SafePath(
                op.source, op.destination, op.feature, op.scalar);
            if (!p.answer.found) EXPECT_TRUE(p.answer.path.empty());
          }
        }
        ++pass;
      } while (!done.load(std::memory_order_acquire) && pass < 40);
    });
  }

  // Writer: keep bumping epochs (feature nudges re-cluster nothing but
  // invalidate the touched cluster) while clients run.
  std::thread writer([&] {
    Rng rng(7);
    for (int round = 0; round < 30; ++round) {
      const int node = static_cast<int>(rng.UniformInt(120));
      Feature f = net->feature(node);
      f[0] += rng.Uniform(-0.01, 0.01);
      session.UpdateFeatureAndPublish(node, f);
    }
    done.store(true, std::memory_order_release);
  });

  writer.join();
  for (std::thread& t : clients) t.join();

  const ServeCounters c = session.frontend().Counters();
  // Every query either hit or missed; nothing is double-counted.
  EXPECT_EQ(c.cache.hits + c.cache.misses,
            c.range_queries + c.path_queries);
  // Every miss inserted exactly one entry.
  EXPECT_EQ(c.cache.insertions, c.cache.misses);
  // Residency stays within the configured bound.
  EXPECT_LE(session.frontend().CacheSize(), 2u * 4u);
  // 30 publishes with one touched cluster each: epochs moved, and the
  // invalidation machinery actually fired.
  EXPECT_EQ(c.publishes, 31u);  // Initial + 30 rounds.
  EXPECT_GE(c.epoch_bumps, 30u);
  EXPECT_GT(c.cache.hits, 0u);
  EXPECT_GT(c.cache.capacity_evictions, 0u);
}

TEST(ServeStressTest, InvalidationCountersAreConsistent) {
  ResultCache::Options opt;
  opt.shards = 4;
  opt.capacity_per_shard = 16;
  ResultCache cache(opt);

  std::vector<std::thread> threads;
  std::atomic<uint64_t> sig{1};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < 2000; ++i) {
        const std::string key =
            "k" + std::to_string(rng.UniformInt(64));
        const uint64_t current = sig.load(std::memory_order_relaxed);
        if (!cache.Lookup(key, current).has_value()) {
          CacheEntry e;
          e.is_range = true;
          e.signature = current;
          cache.Insert(key, e);
        }
      }
    });
  }
  std::thread invalidator([&] {
    for (int i = 0; i < 50; ++i) {
      cache.InvalidateStale(sig.fetch_add(1, std::memory_order_relaxed) + 1);
    }
  });
  for (std::thread& t : threads) t.join();
  invalidator.join();

  const CacheCounters c = cache.Counters();
  EXPECT_EQ(c.hits + c.misses, 4u * 2000u);
  EXPECT_EQ(c.insertions, c.misses);
  EXPECT_LE(cache.Size(), 4u * 16u);
}

}  // namespace
}  // namespace serve
}  // namespace elink
