// Tests for the Section-6 dynamic cluster maintenance: the A1-A3 conditions,
// escalation, detach/merge, root pushes, and the communication-vs-quality
// trade-off.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/elink.h"
#include "cluster/maintenance.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "sim/topology.h"

namespace elink {
namespace {

std::shared_ptr<const DistanceMetric> OneDim() {
  return std::make_shared<WeightedEuclidean>(WeightedEuclidean::Euclidean(1));
}

/// A 1x4 path clustered as {0,1} (root 0, features 0) and {2,3} (root 2,
/// features 10).
struct PathFixture {
  Topology topology = MakeGridTopology(1, 4);
  Clustering clustering;
  std::vector<Feature> features = {{0.0}, {0.0}, {10.0}, {10.0}};

  PathFixture() { clustering.root_of = {0, 0, 2, 2}; }

  MaintenanceSession MakeSession(double delta, double slack) {
    MaintenanceConfig cfg;
    cfg.delta = delta;
    cfg.slack = slack;
    return MaintenanceSession(topology, clustering, features, OneDim(), cfg);
  }
};

TEST(MaintenanceTest, A1AbsorbsSmallDrift) {
  PathFixture fx;
  MaintenanceSession s = fx.MakeSession(/*delta=*/4.0, /*slack=*/1.0);
  s.UpdateFeature(1, {0.5});  // d(F, F') = 0.5 <= slack.
  EXPECT_EQ(s.stats().total_units(), 0u);
  EXPECT_EQ(s.silent_updates(), 1);
  EXPECT_EQ(s.detaches(), 0);
}

TEST(MaintenanceTest, A3AbsorbsWhenFarFromRootButUnderDeltaMinusSlack) {
  PathFixture fx;
  MaintenanceSession s = fx.MakeSession(/*delta=*/4.0, /*slack=*/1.0);
  // Jump by 2.5 (violates A1 and A2) but distance to root 2.5 <= 4 - 1.
  s.UpdateFeature(1, {2.5});
  EXPECT_EQ(s.stats().total_units(), 0u);
  EXPECT_EQ(s.silent_updates(), 1);
}

TEST(MaintenanceTest, A2AbsorbsWhenDistanceToRootShrinks) {
  PathFixture fx;
  // Start node 1 at distance 3.8 from its root, then move it closer: A3
  // fails (3.0 > delta - slack = 2.6) and A1 fails (move of 0.8 > 0.5), but
  // A2 holds because the distance decreased.
  fx.features[1] = {3.8};
  MaintenanceSession s = fx.MakeSession(/*delta=*/3.1, /*slack=*/0.5);
  s.UpdateFeature(1, {3.0});
  EXPECT_EQ(s.stats().total_units(), 0u);
  EXPECT_EQ(s.silent_updates(), 1);
}

TEST(MaintenanceTest, EscalationStaysWhenWithinDeltaOfLiveRoot) {
  PathFixture fx;
  MaintenanceSession s = fx.MakeSession(/*delta=*/4.0, /*slack=*/1.0);
  // 3.5 violates A1 (3.5 > 1), A2 (increase), A3 (3.5 > 3): escalate; live
  // root is still 0, d = 3.5 <= 4: stay in cluster.
  s.UpdateFeature(1, {3.5});
  EXPECT_GT(s.stats().units("update_escalate"), 0u);
  EXPECT_EQ(s.detaches(), 0);
  EXPECT_EQ(s.clustering().root_of[1], 0);
}

TEST(MaintenanceTest, DetachMergesWithNeighborCluster) {
  PathFixture fx;
  MaintenanceSession s = fx.MakeSession(/*delta=*/4.0, /*slack=*/1.0);
  // Node 1 jumps to 9: beyond delta of root 0, but neighbor 2's cluster
  // (root feature 10) is within delta.
  s.UpdateFeature(1, {9.0});
  EXPECT_EQ(s.detaches(), 1);
  EXPECT_EQ(s.clustering().root_of[1], 2);
  EXPECT_GT(s.stats().units("update_merge_probe"), 0u);
  EXPECT_TRUE(s.ValidateRootDistanceInvariant(4.0 + 2.0).ok());
}

TEST(MaintenanceTest, DetachBecomesSingletonWhenNoNeighborFits) {
  PathFixture fx;
  MaintenanceSession s = fx.MakeSession(/*delta=*/4.0, /*slack=*/1.0);
  // Node 1 jumps to 100: no cluster fits.
  s.UpdateFeature(1, {100.0});
  EXPECT_EQ(s.detaches(), 1);
  EXPECT_EQ(s.clustering().root_of[1], 1);
  EXPECT_EQ(s.clustering().num_clusters(), 3);
}

TEST(MaintenanceTest, RootDriftWithinSlackIsSilent) {
  PathFixture fx;
  MaintenanceSession s = fx.MakeSession(/*delta=*/4.0, /*slack=*/1.0);
  s.UpdateFeature(0, {0.9});
  EXPECT_EQ(s.stats().total_units(), 0u);
  EXPECT_EQ(s.silent_updates(), 1);
}

TEST(MaintenanceTest, RootDriftBeyondSlackPushesDownTree) {
  PathFixture fx;
  MaintenanceSession s = fx.MakeSession(/*delta=*/4.0, /*slack=*/1.0);
  s.UpdateFeature(0, {2.0});
  EXPECT_GT(s.stats().units("update_root_push"), 0u);
  // Member 1 (feature 0) is within delta of the new root feature: stays.
  EXPECT_EQ(s.clustering().root_of[1], 0);
}

TEST(MaintenanceTest, RootDriftEvictsFarMembers) {
  PathFixture fx;
  MaintenanceSession s = fx.MakeSession(/*delta=*/4.0, /*slack=*/1.0);
  // Root 0 jumps to 6: member 1 (feature 0) is now 6 > delta away; node 1's
  // neighbor 2 has root feature 10, also too far (d = 10): singleton.
  s.UpdateFeature(0, {6.0});
  EXPECT_EQ(s.detaches(), 1);
  EXPECT_EQ(s.clustering().root_of[1], 1);
}

TEST(MaintenanceTest, ArticulationDetachRepairsOldCluster) {
  // Path 0-1-2 all one cluster rooted at 0; node 1 (the middle) detaches,
  // stranding node 2 from root 0.
  Topology t = MakeGridTopology(1, 3);
  Clustering c;
  c.root_of = {0, 0, 0};
  std::vector<Feature> f = {{0.0}, {0.0}, {0.0}};
  MaintenanceConfig cfg;
  cfg.delta = 2.0;
  cfg.slack = 0.5;
  MaintenanceSession s(t, c, f, OneDim(), cfg);
  s.UpdateFeature(1, {50.0});
  EXPECT_EQ(s.detaches(), 1);
  // Node 2 must have been promoted to its own cluster (connectivity repair).
  EXPECT_EQ(s.clustering().root_of[1], 1);
  EXPECT_EQ(s.clustering().root_of[2], 2);
  EXPECT_GT(s.stats().units("update_repair"), 0u);
}

TEST(MaintenanceTest, ZeroSlackEscalatesEveryRealChange) {
  PathFixture fx;
  MaintenanceSession s = fx.MakeSession(/*delta=*/4.0, /*slack=*/0.0);
  s.UpdateFeature(1, {1.0});  // A1 fails (1 > 0), A2 fails, A3: 1 <= 4: holds.
  EXPECT_EQ(s.stats().total_units(), 0u);
  s.UpdateFeature(1, {4.5});  // All fail: escalate; 4.5 > 4: detach.
  EXPECT_EQ(s.detaches(), 1);
}

TEST(MaintenanceTest, RejectsOverlargeSlack) {
  PathFixture fx;
  MaintenanceConfig cfg;
  cfg.delta = 1.0;
  cfg.slack = 0.8;  // > delta / 2.
  EXPECT_DEATH(
      MaintenanceSession(fx.topology, fx.clustering, fx.features, OneDim(),
                         cfg),
      "slack");
}

// -- Property: replay on a real clustering keeps the invariant and larger
//    slack means fewer messages (the Fig. 10 trade-off). ---------------------

class MaintenanceSlackSweep : public ::testing::TestWithParam<double> {};

TEST_P(MaintenanceSlackSweep, InvariantHoldsUnderReplay) {
  const double slack_frac = GetParam();
  SyntheticConfig scfg;
  scfg.num_nodes = 100;
  scfg.seed = 404;
  Result<SensorDataset> ds = MakeSyntheticDataset(scfg);
  ASSERT_TRUE(ds.ok());
  const double delta = 0.35 * FeatureDiameter(ds.value());
  const double slack = slack_frac * delta;

  ElinkConfig ecfg;
  ecfg.delta = delta;
  ecfg.slack = slack;
  ecfg.seed = 12;
  Result<ElinkResult> base = RunElink(ds.value(), ecfg, ElinkMode::kImplicit);
  ASSERT_TRUE(base.ok());

  MaintenanceConfig mcfg;
  mcfg.delta = delta;
  mcfg.slack = slack;
  MaintenanceSession session(ds.value().topology, base.value().clustering,
                             ds.value().features, ds.value().metric, mcfg);
  // Replay feature perturbations: random walks around the initial features.
  Rng rng(777);
  std::vector<Feature> current = ds.value().features;
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 100; ++i) {
      current[i][0] += rng.Normal(0.0, 0.02 * delta);
      session.UpdateFeature(i, current[i]);
    }
  }
  EXPECT_TRUE(
      session.ValidateRootDistanceInvariant(delta + 2 * slack).ok());
}

INSTANTIATE_TEST_SUITE_P(Slacks, MaintenanceSlackSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.4));

TEST(MaintenanceTest, LargerSlackReducesCommunication) {
  SyntheticConfig scfg;
  scfg.num_nodes = 100;
  scfg.seed = 405;
  Result<SensorDataset> ds = MakeSyntheticDataset(scfg);
  ASSERT_TRUE(ds.ok());
  const double delta = 0.4 * FeatureDiameter(ds.value());

  auto run_with_slack = [&](double slack) {
    ElinkConfig ecfg;
    ecfg.delta = delta;
    ecfg.slack = slack;
    ecfg.seed = 13;
    Result<ElinkResult> base =
        RunElink(ds.value(), ecfg, ElinkMode::kImplicit);
    EXPECT_TRUE(base.ok());
    MaintenanceConfig mcfg;
    mcfg.delta = delta;
    mcfg.slack = slack;
    MaintenanceSession session(ds.value().topology, base.value().clustering,
                               ds.value().features, ds.value().metric, mcfg);
    Rng rng(888);
    std::vector<Feature> current = ds.value().features;
    for (int round = 0; round < 20; ++round) {
      for (int i = 0; i < 100; ++i) {
        current[i][0] += rng.Normal(0.0, 0.03 * delta);
        session.UpdateFeature(i, current[i]);
      }
    }
    return session.stats().total_units();
  };

  const uint64_t tight = run_with_slack(0.02 * delta);
  const uint64_t loose = run_with_slack(0.4 * delta);
  EXPECT_LT(loose, tight);
}

}  // namespace
}  // namespace elink
