// Tests for src/cluster: the clustering model (validation, repair, cluster
// trees) and the quadtree sentinel decomposition.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "cluster/clustering.h"
#include "cluster/quadtree.h"
#include "common/rng.h"
#include "metric/distance.h"
#include "sim/topology.h"

namespace elink {
namespace {

WeightedEuclidean OneDim() { return WeightedEuclidean::Euclidean(1); }

TEST(ClusteringTest, NumClustersAndGroups) {
  Clustering c;
  c.root_of = {0, 0, 2, 2, 2};
  EXPECT_EQ(c.num_clusters(), 2);
  const auto groups = c.Groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].first, 0);
  EXPECT_EQ(groups[0].second, (std::vector<int>{0, 1}));
  EXPECT_EQ(groups[1].second, (std::vector<int>{2, 3, 4}));
  EXPECT_TRUE(c.SameCluster(0, 1));
  EXPECT_FALSE(c.SameCluster(1, 2));
}

TEST(ValidateTest, AcceptsValidClustering) {
  // Path 0-1-2-3 with features 0, 1, 5, 6 and delta 2: {0,1}, {2,3}.
  Topology t = MakeGridTopology(1, 4);
  std::vector<Feature> f = {{0.0}, {1.0}, {5.0}, {6.0}};
  Clustering c;
  c.root_of = {0, 0, 2, 2};
  EXPECT_TRUE(
      ValidateDeltaClustering(c, t.adjacency, f, OneDim(), 2.0).ok());
}

TEST(ValidateTest, RejectsCompactnessViolation) {
  Topology t = MakeGridTopology(1, 3);
  std::vector<Feature> f = {{0.0}, {1.0}, {9.0}};
  Clustering c;
  c.root_of = {0, 0, 0};
  Status st = ValidateDeltaClustering(c, t.adjacency, f, OneDim(), 2.0);
  EXPECT_FALSE(st.ok());
}

TEST(ValidateTest, RejectsDisconnectedCluster) {
  // Path 0-1-2: cluster {0, 2} is disconnected without 1.
  Topology t = MakeGridTopology(1, 3);
  std::vector<Feature> f = {{0.0}, {0.0}, {0.0}};
  Clustering c;
  c.root_of = {0, 1, 0};
  EXPECT_FALSE(
      ValidateDeltaClustering(c, t.adjacency, f, OneDim(), 5.0).ok());
}

TEST(ValidateTest, RejectsUnclusteredNode) {
  Topology t = MakeGridTopology(1, 2);
  std::vector<Feature> f = {{0.0}, {0.0}};
  Clustering c;
  c.root_of = {0, -1};
  EXPECT_FALSE(
      ValidateDeltaClustering(c, t.adjacency, f, OneDim(), 5.0).ok());
}

TEST(ValidateTest, RejectsRootOutsideOwnCluster) {
  Topology t = MakeGridTopology(1, 2);
  std::vector<Feature> f = {{0.0}, {0.0}};
  Clustering c;
  c.root_of = {1, 0};  // Each points at the other: no root is its own.
  EXPECT_FALSE(
      ValidateDeltaClustering(c, t.adjacency, f, OneDim(), 5.0).ok());
}

TEST(RepairTest, SplitsStrandedFragment) {
  // Path 0-1-2-3-4; cluster A = {0,1,3,4} (1 and 3 not adjacent), B = {2}.
  Topology t = MakeGridTopology(1, 5);
  Clustering c;
  c.root_of = {0, 0, 2, 0, 0};
  const int created = RepairDisconnectedClusters(&c, t.adjacency);
  EXPECT_EQ(created, 1);
  // Component containing root 0 keeps it; {3,4} promotes 3.
  EXPECT_EQ(c.root_of[0], 0);
  EXPECT_EQ(c.root_of[1], 0);
  EXPECT_EQ(c.root_of[2], 2);
  EXPECT_EQ(c.root_of[3], 3);
  EXPECT_EQ(c.root_of[4], 3);
  std::vector<Feature> f(5, Feature{0.0});
  EXPECT_TRUE(
      ValidateDeltaClustering(c, t.adjacency, f, OneDim(), 1.0).ok());
}

TEST(RepairTest, NoOpOnConnectedClusters) {
  Topology t = MakeGridTopology(2, 3);
  Clustering c;
  c.root_of = {0, 0, 2, 0, 0, 2};
  Clustering before = c;
  EXPECT_EQ(RepairDisconnectedClusters(&c, t.adjacency), 0);
  EXPECT_EQ(c.root_of, before.root_of);
}

TEST(ClusterTreesTest, TreesSpanClustersAndRespectEdges) {
  Topology t = MakeGridTopology(3, 3);
  Clustering c;
  // Left 2 columns one cluster rooted at 4, right column rooted at 2.
  c.root_of = {4, 4, 2, 4, 4, 2, 4, 4, 2};
  const auto parent = BuildClusterTrees(c, t.adjacency);
  for (int i = 0; i < 9; ++i) {
    if (i == c.root_of[i]) {
      EXPECT_EQ(parent[i], i);
    } else {
      // Parent is a communication neighbor in the same cluster.
      EXPECT_TRUE(t.HasEdge(i, parent[i]));
      EXPECT_EQ(c.root_of[parent[i]], c.root_of[i]);
      // Walking parents reaches the root.
      int cur = i, steps = 0;
      while (cur != c.root_of[i] && steps < 10) {
        cur = parent[cur];
        ++steps;
      }
      EXPECT_EQ(cur, c.root_of[i]);
    }
  }
}

// -- Quadtree -----------------------------------------------------------------

TEST(QuadtreeTest, EveryNodeExactlyOneSentinelLevel) {
  Topology t = MakeGridTopology(8, 8);
  const auto q = QuadtreeDecomposition::Build(t);
  int total = 0;
  for (int l = 0; l < q.num_levels(); ++l) {
    total += static_cast<int>(q.sentinel_set(l).size());
    for (int node : q.sentinel_set(l)) EXPECT_EQ(q.level_of(node), l);
  }
  EXPECT_EQ(total, 64);
  EXPECT_EQ(q.sentinel_set(0).size(), 1u);
}

TEST(QuadtreeTest, SentinelSetSizesBoundedByPowersOfFour) {
  Topology t = MakeGridTopology(8, 8);
  const auto q = QuadtreeDecomposition::Build(t);
  long long cap = 1;
  for (int l = 0; l < q.num_levels(); ++l) {
    EXPECT_LE(static_cast<long long>(q.sentinel_set(l).size()), cap);
    cap *= 4;
  }
}

TEST(QuadtreeTest, QuadParentIsOneLevelUp) {
  Topology t = MakeGridTopology(8, 8);
  const auto q = QuadtreeDecomposition::Build(t);
  for (int i = 0; i < t.num_nodes(); ++i) {
    if (i == q.root()) {
      EXPECT_EQ(q.quad_parent(i), i);
      EXPECT_EQ(q.level_of(i), 0);
    } else {
      EXPECT_EQ(q.level_of(q.quad_parent(i)), q.level_of(i) - 1);
    }
  }
}

TEST(QuadtreeTest, QuadChildrenInverseOfParent) {
  Topology t = MakeGridTopology(6, 9);
  const auto q = QuadtreeDecomposition::Build(t);
  for (int i = 0; i < t.num_nodes(); ++i) {
    for (int child : q.quad_children(i)) {
      EXPECT_EQ(q.quad_parent(child), i);
    }
    if (i != q.root()) {
      const auto& siblings = q.quad_children(q.quad_parent(i));
      EXPECT_NE(std::find(siblings.begin(), siblings.end(), i),
                siblings.end());
    }
  }
}

TEST(QuadtreeTest, RootNearCenter) {
  Topology t = MakeGridTopology(9, 9);  // Center node exists: (4,4) = 40.
  const auto q = QuadtreeDecomposition::Build(t);
  EXPECT_EQ(q.root(), 40);
}

TEST(QuadtreeTest, DepthLogarithmicOnGrids) {
  // The paper: alpha ~ log4(3N + 1) - 1 for grids; allow the +k slack of
  // footnote 2.
  for (int side : {4, 8, 16}) {
    Topology t = MakeGridTopology(side, side);
    const auto q = QuadtreeDecomposition::Build(t);
    const double alpha_paper =
        std::log(3.0 * t.num_nodes() + 1) / std::log(4.0) - 1.0;
    EXPECT_LE(q.num_levels() - 1, static_cast<int>(alpha_paper) + 3);
  }
}

TEST(QuadtreeTest, HandlesRandomTopology) {
  Rng rng(91);
  Result<Topology> t = MakeRandomTopology(200, 10.0, 1.2, &rng);
  ASSERT_TRUE(t.ok());
  const auto q = QuadtreeDecomposition::Build(t.value());
  int total = 0;
  for (int l = 0; l < q.num_levels(); ++l) {
    total += static_cast<int>(q.sentinel_set(l).size());
  }
  EXPECT_EQ(total, 200);
}

TEST(QuadtreeTest, HandlesCoincidentPositions) {
  // All nodes at the same position: the depth cap must assign everyone.
  Topology t;
  t.width = 1.0;
  t.height = 1.0;
  t.positions.assign(10, Point2D{0.5, 0.5});
  t.adjacency.assign(10, {});
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      if (i != j) t.adjacency[i].push_back(j);
    }
  }
  const auto q = QuadtreeDecomposition::Build(t, /*max_levels=*/4);
  int total = 0;
  for (int l = 0; l < q.num_levels(); ++l) {
    total += static_cast<int>(q.sentinel_set(l).size());
  }
  EXPECT_EQ(total, 10);
  EXPECT_LE(q.num_levels(), 4);
}

TEST(QuadtreeTest, SingleNode) {
  Topology t = MakeGridTopology(1, 1);
  const auto q = QuadtreeDecomposition::Build(t);
  EXPECT_EQ(q.num_levels(), 1);
  EXPECT_EQ(q.root(), 0);
  EXPECT_TRUE(q.quad_children(0).empty());
}

}  // namespace
}  // namespace elink
