// Brute-force oracle parity for the distributed query protocols under a
// fault-free network: on 50 fuzzer-derived scenarios, every answer from
// RangeQueryDistributed must match the linear-scan oracle exactly, and every
// SafePathDistributed answer must agree with the BFS reachability oracle and
// return a genuinely safe, connected path.  Runs through the
// ClusteredSensorNetwork facade, which also exercises the checker hooks
// (cluster_index / cluster_tree_parent) against the M-tree invariants.
#include <gtest/gtest.h>

#include <memory>

#include "check/invariants.h"
#include "check/scenario.h"
#include "common/rng.h"
#include "core/clustered_network.h"

namespace elink {
namespace check {
namespace {

// The facade's protocols run on an inert fault plan by construction (its
// Options carry no FaultPlan), so "0% loss" holds for every scenario here
// regardless of the scenario's own (unused) fault fields.
std::unique_ptr<ClusteredSensorNetwork> BuildNetwork(const Scenario& s) {
  SensorDataset ds;
  ds.name = "fuzz";
  ds.topology = s.topology;
  ds.features = s.features;
  ds.metric = s.metric;
  ClusteredSensorNetwork::Options opts;
  opts.delta = s.delta;
  opts.slack = s.slack;
  opts.mode = ElinkMode::kExplicit;
  opts.synchronous = s.synchronous;
  opts.seed = s.seed;
  Result<std::unique_ptr<ClusteredSensorNetwork>> net =
      ClusteredSensorNetwork::Build(ds, opts);
  EXPECT_TRUE(net.ok()) << net.status().ToString();
  return net.ok() ? std::move(net).value() : nullptr;
}

TEST(OracleParityTest, DistributedRangeQueryMatchesLinearScan) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Result<Scenario> sc = MakeScenario(seed);
    ASSERT_TRUE(sc.ok()) << sc.status().ToString();
    const Scenario& s = sc.value();
    std::unique_ptr<ClusteredSensorNetwork> net = BuildNetwork(s);
    ASSERT_NE(net, nullptr) << "seed " << seed;

    // The facade's index must satisfy the structural M-tree invariants
    // before any query consults it.
    ASSERT_TRUE(CheckMTreeInvariants(net->cluster_index(), net->clustering(),
                                     net->cluster_tree_parent(), s.features,
                                     *s.metric)
                    .ok())
        << "seed " << seed;

    Rng rng = Rng(seed).Fork(91);
    const int n = s.topology.num_nodes();
    for (int t = 0; t < 3; ++t) {
      const int initiator = static_cast<int>(rng.UniformInt(n));
      Feature q = s.features[rng.UniformInt(n)];
      for (double& v : q) v += rng.Uniform(-0.3, 0.3) * s.delta;
      const double r = rng.Uniform(0.2, 1.2) * s.delta;
      const std::vector<int> truth = RangeOracle(s.features, *s.metric, q, r);

      Result<DistributedQueryOutcome> out =
          net->RangeQueryDistributed(initiator, q, r);
      ASSERT_TRUE(out.ok()) << "seed " << seed << ": "
                            << out.status().ToString();
      EXPECT_TRUE(out.value().answer_received)
          << "seed " << seed << " query " << t;
      EXPECT_TRUE(out.value().complete) << "seed " << seed << " query " << t;
      EXPECT_EQ(out.value().match_count,
                static_cast<long long>(truth.size()))
          << "seed " << seed << " query " << t;
      EXPECT_EQ(out.value().unreachable_subtrees, 0)
          << "seed " << seed << " query " << t;
    }
  }
}

TEST(OracleParityTest, SafePathDistributedMatchesBfsOracle) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Result<Scenario> sc = MakeScenario(seed);
    ASSERT_TRUE(sc.ok()) << sc.status().ToString();
    const Scenario& s = sc.value();
    std::unique_ptr<ClusteredSensorNetwork> net = BuildNetwork(s);
    ASSERT_NE(net, nullptr) << "seed " << seed;

    Rng rng = Rng(seed).Fork(92);
    const int n = s.topology.num_nodes();
    for (int t = 0; t < 3; ++t) {
      const int source = static_cast<int>(rng.UniformInt(n));
      const int destination = static_cast<int>(rng.UniformInt(n));
      Feature danger = s.features[rng.UniformInt(n)];
      for (double& v : danger) v += rng.Uniform(-0.3, 0.3) * s.delta;
      const double gamma = rng.Uniform(0.2, 1.0) * s.delta;

      Result<PathQueryResult> out =
          net->SafePathDistributed(source, destination, danger, gamma);
      ASSERT_TRUE(out.ok()) << "seed " << seed << ": "
                            << out.status().ToString();
      // Fault-free: found must equal BFS reachability, and any returned
      // path must be valid end to end (require_exact covers both).
      const Status st = CheckPathResult(
          out.value(), s.topology.adjacency, s.features, *s.metric, danger,
          gamma, source, destination, /*require_exact=*/true);
      EXPECT_TRUE(st.ok()) << "seed " << seed << " query " << t << ": "
                           << st.ToString();
    }
  }
}

}  // namespace
}  // namespace check
}  // namespace elink
