// Tests for src/data: the Tao-like, terrain, and synthetic generators and
// the dataset helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "data/dataset.h"
#include "sim/graph.h"
#include "data/plume.h"
#include "data/synthetic.h"
#include "data/tao.h"
#include "data/terrain.h"

namespace elink {
namespace {

// Mean pairwise feature distance between communication-graph neighbors vs.
// between random non-neighbor pairs; spatially correlated data must have the
// former clearly smaller.
std::pair<double, double> NeighborVsGlobalDistance(const SensorDataset& ds) {
  double nb_sum = 0.0;
  int nb_count = 0;
  const int n = ds.topology.num_nodes();
  for (int i = 0; i < n; ++i) {
    for (int j : ds.topology.adjacency[i]) {
      if (j <= i) continue;
      nb_sum += ds.metric->Distance(ds.features[i], ds.features[j]);
      ++nb_count;
    }
  }
  double all_sum = 0.0;
  int all_count = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      all_sum += ds.metric->Distance(ds.features[i], ds.features[j]);
      ++all_count;
    }
  }
  return {nb_sum / nb_count, all_sum / all_count};
}

TEST(TaoDatasetTest, ShapeMatchesPaperSetup) {
  TaoConfig cfg;
  cfg.measurements_per_day = 48;  // Keep the test fast.
  cfg.train_days = 10;
  cfg.eval_days = 5;
  Result<SensorDataset> ds = MakeTaoDataset(cfg);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().topology.num_nodes(), 54);  // 6 x 9 grid.
  EXPECT_EQ(ds.value().features.size(), 54u);
  for (const auto& f : ds.value().features) EXPECT_EQ(f.size(), 4u);
  for (const auto& s : ds.value().streams) {
    EXPECT_EQ(s.size(), static_cast<size_t>(5 * 48));
  }
  EXPECT_EQ(ds.value().measurements_per_day, 48);
}

TEST(TaoDatasetTest, TemperaturesInPlausibleSeaSurfaceRange) {
  TaoConfig cfg;
  cfg.measurements_per_day = 48;
  cfg.train_days = 10;
  cfg.eval_days = 2;
  Result<SensorDataset> ds = MakeTaoDataset(cfg);
  ASSERT_TRUE(ds.ok());
  double lo = 1e9, hi = -1e9, sum = 0.0;
  long long count = 0;
  for (const auto& s : ds.value().streams) {
    for (double v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      sum += v;
      ++count;
    }
  }
  // Paper's December-1998 statistics: range (19.57, 32.79), mean 25.61.
  EXPECT_GT(lo, 19.0);
  EXPECT_LT(hi, 33.0);
  EXPECT_NEAR(sum / count, 25.6, 1.5);
}

TEST(TaoDatasetTest, SpatiallyCorrelated) {
  TaoConfig cfg;
  cfg.measurements_per_day = 48;
  cfg.train_days = 12;
  cfg.eval_days = 1;
  Result<SensorDataset> ds = MakeTaoDataset(cfg);
  ASSERT_TRUE(ds.ok());
  const auto [nb, global] = NeighborVsGlobalDistance(ds.value());
  EXPECT_LT(nb, 0.8 * global);
}

TEST(TaoDatasetTest, DeterministicForSeed) {
  TaoConfig cfg;
  cfg.measurements_per_day = 24;
  cfg.train_days = 6;
  cfg.eval_days = 1;
  Result<SensorDataset> a = MakeTaoDataset(cfg);
  Result<SensorDataset> b = MakeTaoDataset(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().features, b.value().features);
}

TEST(TaoDatasetTest, RejectsBadConfig) {
  TaoConfig cfg;
  cfg.train_days = 2;
  EXPECT_FALSE(MakeTaoDataset(cfg).ok());
  TaoConfig cfg2;
  cfg2.num_regimes = 0;
  EXPECT_FALSE(MakeTaoDataset(cfg2).ok());
}

TEST(TaoDatasetTest, DistanceWeightsMatchPaper) {
  const auto w = TaoDistanceWeights();
  EXPECT_EQ(w, (std::vector<double>{0.5, 0.3, 0.2, 0.1}));
}

TEST(HeightmapTest, DiamondSquareCoversRequestedRange) {
  Rng rng(3);
  Heightmap hm = Heightmap::DiamondSquare(5, 0.5, 175.0, 1996.0, &rng);
  EXPECT_EQ(hm.size(), 33);
  double lo = 1e9, hi = -1e9;
  for (int r = 0; r < hm.size(); ++r) {
    for (int c = 0; c < hm.size(); ++c) {
      lo = std::min(lo, hm.at(r, c));
      hi = std::max(hi, hm.at(r, c));
    }
  }
  EXPECT_DOUBLE_EQ(lo, 175.0);
  EXPECT_DOUBLE_EQ(hi, 1996.0);
}

TEST(HeightmapTest, BilinearSampleInterpolates) {
  Rng rng(5);
  Heightmap hm = Heightmap::DiamondSquare(4, 0.5, 0.0, 100.0, &rng);
  // Corner samples equal the corner cells.
  EXPECT_DOUBLE_EQ(hm.Sample(0.0, 0.0), hm.at(0, 0));
  EXPECT_DOUBLE_EQ(hm.Sample(1.0, 1.0), hm.at(hm.size() - 1, hm.size() - 1));
  // Any sample stays within the map's range.
  for (double u = 0.0; u <= 1.0; u += 0.13) {
    for (double v = 0.0; v <= 1.0; v += 0.17) {
      const double s = hm.Sample(u, v);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 100.0);
    }
  }
}

TEST(TerrainDatasetTest, ShapeAndElevationRange) {
  TerrainConfig cfg;
  cfg.num_nodes = 300;  // Keep the test fast.
  cfg.radio_range_fraction = 0.1;
  Result<SensorDataset> ds = MakeTerrainDataset(cfg);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().topology.num_nodes(), 300);
  EXPECT_TRUE(IsConnected(ds.value().topology.adjacency));
  for (const auto& f : ds.value().features) {
    ASSERT_EQ(f.size(), 1u);
    EXPECT_GE(f[0], 175.0);
    EXPECT_LE(f[0], 1996.0);
  }
  EXPECT_TRUE(ds.value().streams.empty());  // Static dataset.
}

TEST(TerrainDatasetTest, SpatiallyCorrelated) {
  TerrainConfig cfg;
  cfg.num_nodes = 400;
  cfg.radio_range_fraction = 0.08;
  Result<SensorDataset> ds = MakeTerrainDataset(cfg);
  ASSERT_TRUE(ds.ok());
  const auto [nb, global] = NeighborVsGlobalDistance(ds.value());
  EXPECT_LT(nb, 0.6 * global);
}

TEST(TerrainDatasetTest, DifferentSeedsDifferentTerrain) {
  TerrainConfig a, b;
  a.num_nodes = b.num_nodes = 100;
  a.radio_range_fraction = b.radio_range_fraction = 0.15;
  a.seed = 1;
  b.seed = 2;
  Result<SensorDataset> da = MakeTerrainDataset(a);
  Result<SensorDataset> db = MakeTerrainDataset(b);
  ASSERT_TRUE(da.ok() && db.ok());
  EXPECT_NE(da.value().features, db.value().features);
}

TEST(SyntheticDatasetTest, AlphaFeaturesInConfiguredRange) {
  SyntheticConfig cfg;
  cfg.num_nodes = 150;
  cfg.train_length = 400;
  cfg.stream_length = 50;
  Result<SensorDataset> ds = MakeSyntheticDataset(cfg);
  ASSERT_TRUE(ds.ok());
  for (const auto& f : ds.value().features) {
    ASSERT_EQ(f.size(), 1u);
    // Fitted AR(1) coefficients estimate alpha in U(0.4, 0.8); allow noise.
    EXPECT_GT(f[0], 0.2);
    EXPECT_LT(f[0], 0.95);
  }
}

TEST(SyntheticDatasetTest, SpatiallyUncorrelated) {
  SyntheticConfig cfg;
  cfg.num_nodes = 300;
  Result<SensorDataset> ds = MakeSyntheticDataset(cfg);
  ASSERT_TRUE(ds.ok());
  const auto [nb, global] = NeighborVsGlobalDistance(ds.value());
  // No spatial structure: neighbor distances are like global distances.
  EXPECT_GT(nb, 0.7 * global);
  EXPECT_LT(nb, 1.3 * global);
}

TEST(SyntheticDatasetTest, ConnectedWithTargetDegree) {
  SyntheticConfig cfg;
  cfg.num_nodes = 250;
  cfg.density = 0.7;
  Result<SensorDataset> ds = MakeSyntheticDataset(cfg);
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(IsConnected(ds.value().topology.adjacency));
  EXPECT_GE(ds.value().topology.average_degree(), 3.0);
}

TEST(SyntheticDatasetTest, RejectsBadConfig) {
  SyntheticConfig cfg;
  cfg.alpha_min = 0.9;
  cfg.alpha_max = 0.5;
  EXPECT_FALSE(MakeSyntheticDataset(cfg).ok());
  SyntheticConfig cfg2;
  cfg2.train_length = 3;
  EXPECT_FALSE(MakeSyntheticDataset(cfg2).ok());
}

TEST(DatasetHelpersTest, DiameterAndSweep) {
  SensorDataset ds;
  ds.topology = MakeGridTopology(1, 3);
  ds.features = {{0.0}, {4.0}, {10.0}};
  ds.metric =
      std::make_shared<WeightedEuclidean>(WeightedEuclidean::Euclidean(1));
  EXPECT_DOUBLE_EQ(FeatureDiameter(ds), 10.0);
  EXPECT_DOUBLE_EQ(MaxNeighborDistance(ds), 6.0);
  const auto sweep = SuggestDeltaSweep(ds, 3, 0.1, 0.5);
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_DOUBLE_EQ(sweep.front(), 1.0);
  EXPECT_DOUBLE_EQ(sweep.back(), 5.0);
  EXPECT_DOUBLE_EQ(sweep[1], 3.0);
}


// -- Plume (contaminant flow) ---------------------------------------------------

TEST(PlumeDatasetTest, ShapeAndNonNegativity) {
  PlumeConfig cfg;
  cfg.num_nodes = 150;
  cfg.radio_range_fraction = 0.12;
  Result<SensorDataset> ds = MakePlumeDataset(cfg);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().topology.num_nodes(), 150);
  EXPECT_TRUE(IsConnected(ds.value().topology.adjacency));
  for (const auto& f : ds.value().features) {
    ASSERT_EQ(f.size(), 1u);
    EXPECT_GE(f[0], 0.0);
  }
  for (const auto& s : ds.value().streams) {
    EXPECT_EQ(s.size(), static_cast<size_t>(cfg.stream_steps));
  }
}

TEST(PlumeDatasetTest, ConcentrationPeaksAtPuffCenter) {
  PlumeConfig cfg;
  const double cx = cfg.source_x + cfg.wind_x * 5;
  const double cy = cfg.source_y + cfg.wind_y * 5;
  const double at_center = PlumeConcentration(cfg, cx, cy, 5);
  EXPECT_GT(at_center, PlumeConcentration(cfg, cx + 100, cy, 5));
  EXPECT_GT(at_center, PlumeConcentration(cfg, cx, cy + 100, 5));
  // Diffusion: the peak decays over time.
  EXPECT_GT(PlumeConcentration(cfg, cfg.source_x, cfg.source_y, 0),
            at_center);
}

TEST(PlumeDatasetTest, PlumeAdvectsDownwind) {
  PlumeConfig cfg;
  // A point downwind of the source sees its concentration rise as the puff
  // arrives.
  const double px = cfg.source_x + cfg.wind_x * 20;
  const double py = cfg.source_y + cfg.wind_y * 20;
  EXPECT_GT(PlumeConcentration(cfg, px, py, 20),
            PlumeConcentration(cfg, px, py, 0));
}

TEST(PlumeDatasetTest, SpatiallyCorrelated) {
  PlumeConfig cfg;
  cfg.num_nodes = 250;
  cfg.radio_range_fraction = 0.1;
  Result<SensorDataset> ds = MakePlumeDataset(cfg);
  ASSERT_TRUE(ds.ok());
  const auto [nb, global] = NeighborVsGlobalDistance(ds.value());
  EXPECT_LT(nb, 0.7 * global);
}

TEST(PlumeDatasetTest, RejectsBadConfig) {
  PlumeConfig cfg;
  cfg.num_nodes = 0;
  EXPECT_FALSE(MakePlumeDataset(cfg).ok());
  PlumeConfig cfg2;
  cfg2.sigma0 = 0.0;
  EXPECT_FALSE(MakePlumeDataset(cfg2).ok());
}

}  // namespace
}  // namespace elink
