// Tests for src/metric: weighted Euclidean / Manhattan / table metrics and
// the axiom checker.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "metric/distance.h"

namespace elink {
namespace {

TEST(WeightedEuclideanTest, UnweightedMatchesEuclidean) {
  WeightedEuclidean d = WeightedEuclidean::Euclidean(2);
  EXPECT_DOUBLE_EQ(d.Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(d.Distance({1, 1}, {1, 1}), 0.0);
}

TEST(WeightedEuclideanTest, WeightsScaleCoordinates) {
  WeightedEuclidean d({4.0, 1.0});
  // sqrt(4 * 1 + 1 * 0) = 2.
  EXPECT_DOUBLE_EQ(d.Distance({0, 0}, {1, 0}), 2.0);
  EXPECT_DOUBLE_EQ(d.Distance({0, 0}, {0, 1}), 1.0);
}

TEST(WeightedEuclideanTest, PaperExampleOrdering) {
  // Section 2.2: with weights emphasizing the first (higher-order)
  // coefficient, N1 = (0.5, 0.4) must be closer to N2 = (0.5, 0.3) than to
  // N3 = (0.4, 0.4).
  WeightedEuclidean d({0.5, 0.3});
  const double d12 = d.Distance({0.5, 0.4}, {0.5, 0.3});
  const double d13 = d.Distance({0.5, 0.4}, {0.4, 0.4});
  EXPECT_LT(d12, d13);
}

TEST(WeightedEuclideanTest, SatisfiesMetricAxiomsOnRandomSamples) {
  Rng rng(61);
  WeightedEuclidean d({0.5, 0.3, 0.2, 0.1});
  std::vector<Feature> samples;
  for (int i = 0; i < 12; ++i) {
    samples.push_back({rng.Uniform(-1, 1), rng.Uniform(-1, 1),
                       rng.Uniform(-1, 1), rng.Uniform(-1, 1)});
  }
  EXPECT_TRUE(CheckMetricAxioms(d, samples).ok());
}

TEST(WeightedEuclideanTest, RandomWeightVectorsSatisfyAxioms) {
  // Property test: every strictly positive weight vector yields a metric
  // (identity, symmetry, triangle inequality), across dimensions and weight
  // scales — the assumption Definition 1 and the M-tree pruning rest on.
  Rng rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    const int dim = 1 + static_cast<int>(rng.UniformInt(5));
    std::vector<double> weights(dim);
    for (double& w : weights) w = rng.Uniform(0.01, 8.0);
    WeightedEuclidean d(weights);
    std::vector<Feature> samples;
    for (int i = 0; i < 8; ++i) {
      Feature f(dim);
      for (double& v : f) v = rng.Uniform(-5.0, 5.0);
      samples.push_back(std::move(f));
    }
    EXPECT_TRUE(CheckMetricAxioms(d, samples).ok())
        << "trial " << trial << " dim " << dim;
  }
}

TEST(WeightedEuclideanTest, ExtremeWeightRatiosStayMetric) {
  // Severely anisotropic weights stress the triangle inequality's floating
  // point headroom; the checker tolerance must absorb the rounding.
  WeightedEuclidean d({1e-6, 1e6});
  Rng rng(97);
  std::vector<Feature> samples;
  for (int i = 0; i < 10; ++i) {
    samples.push_back({rng.Uniform(-100, 100), rng.Uniform(-100, 100)});
  }
  EXPECT_TRUE(CheckMetricAxioms(d, samples).ok());
}

TEST(ManhattanTest, BasicsAndAxioms) {
  ManhattanDistance d;
  EXPECT_DOUBLE_EQ(d.Distance({1, 2}, {4, 0}), 5.0);
  Rng rng(67);
  std::vector<Feature> samples;
  for (int i = 0; i < 10; ++i) {
    samples.push_back({rng.Uniform(-5, 5), rng.Uniform(-5, 5)});
  }
  EXPECT_TRUE(CheckMetricAxioms(d, samples).ok());
}

TEST(TableMetricTest, LooksUpEntries) {
  Result<TableMetric> t =
      TableMetric::Create({{0, 1, 2}, {1, 0, 1}, {2, 1, 0}});
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t.value().Distance({0.0}, {2.0}), 2.0);
  EXPECT_DOUBLE_EQ(t.value().Distance({1.0}, {1.0}), 0.0);
}

TEST(TableMetricTest, RejectsInvalidTables) {
  EXPECT_FALSE(TableMetric::Create({{0, 1}, {2, 0}}).ok());      // Asymmetric.
  EXPECT_FALSE(TableMetric::Create({{1, 1}, {1, 0}}).ok());      // Diagonal.
  EXPECT_FALSE(TableMetric::Create({{0, -1}, {-1, 0}}).ok());    // Negative.
  EXPECT_FALSE(TableMetric::Create({{0, 1, 2}, {1, 0, 1}}).ok());  // Ragged.
}

TEST(TableMetricTest, Theorem1GadgetIsAMetric) {
  // The NP-hardness reduction uses d = 1 on graph edges and 2 otherwise —
  // the proof asserts this satisfies the metric axioms; verify.
  // Graph: a path 0-1-2 (edge 0-2 absent).
  Result<TableMetric> t =
      TableMetric::Create({{0, 1, 2}, {1, 0, 1}, {2, 1, 0}});
  ASSERT_TRUE(t.ok());
  std::vector<Feature> items = {{0.0}, {1.0}, {2.0}};
  EXPECT_TRUE(CheckMetricAxioms(t.value(), items).ok());
}

TEST(CheckMetricAxiomsTest, DetectsTriangleViolation) {
  // d(0,2) = 5 > d(0,1) + d(1,2) = 2: not a metric.
  class Broken : public DistanceMetric {
   public:
    double Distance(const Feature& a, const Feature& b) const override {
      const double diff = std::fabs(a[0] - b[0]);
      return diff >= 2.0 ? 5.0 : diff;
    }
  };
  Broken d;
  std::vector<Feature> samples = {{0.0}, {1.0}, {2.0}};
  Status st = CheckMetricAxioms(d, samples);
  EXPECT_FALSE(st.ok());
}

TEST(FeatureToStringTest, Renders) {
  EXPECT_EQ(FeatureToString({1.5, 2.0}), "(1.5, 2.0)");
  EXPECT_EQ(FeatureToString({}), "()");
}

}  // namespace
}  // namespace elink
