// Tests for the topology-churn layer (sim/churn.h + its Network
// integration): plan evaluation, absence windows, restart semantics,
// neighbor notifications, live-adjacency edits, and the determinism
// contract (churn draws no randomness, so enabling it never perturbs the
// fault or delay RNG streams).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/churn.h"
#include "sim/network.h"
#include "sim/topology.h"

namespace elink {
namespace {

// -- ChurnSchedule ------------------------------------------------------------

TEST(ChurnScheduleTest, DefaultPlanIsInert) {
  ChurnPlan plan;
  EXPECT_FALSE(plan.enabled());
  ChurnSchedule sched(plan, 9);
  EXPECT_FALSE(sched.enabled());
  EXPECT_TRUE(sched.events().empty());
  EXPECT_FALSE(sched.IsAbsent(0, 0.0));
}

TEST(ChurnScheduleTest, AbsenceWindowsAreHalfOpen) {
  ChurnPlan plan;
  plan.joins.push_back({1, 10.0});
  plan.leaves.push_back({2, 20.0});
  plan.crashes.push_back({3, 5.0, 15.0});
  plan.crashes.push_back({4, 5.0});  // Permanent: no repair event.
  ChurnSchedule sched(plan, 9);
  ASSERT_TRUE(sched.enabled());

  // Join: absent during [0, at).
  EXPECT_TRUE(sched.IsAbsent(1, 0.0));
  EXPECT_TRUE(sched.IsAbsent(1, 9.9));
  EXPECT_FALSE(sched.IsAbsent(1, 10.0));
  // Leave: absent during [at, inf).
  EXPECT_FALSE(sched.IsAbsent(2, 19.9));
  EXPECT_TRUE(sched.IsAbsent(2, 20.0));
  EXPECT_TRUE(sched.IsAbsent(2, 1e12));
  // Crash: absent during [crash_at, recover_at).
  EXPECT_FALSE(sched.IsAbsent(3, 4.9));
  EXPECT_TRUE(sched.IsAbsent(3, 5.0));
  EXPECT_TRUE(sched.IsAbsent(3, 14.9));
  EXPECT_FALSE(sched.IsAbsent(3, 15.0));
  EXPECT_TRUE(sched.IsAbsent(4, 1e12));  // Never repaired.
  // Unlisted nodes are always present.
  EXPECT_FALSE(sched.IsAbsent(0, 50.0));
}

TEST(ChurnScheduleTest, EventsAreTimeSortedWithRepairs) {
  ChurnPlan plan;
  plan.leaves.push_back({2, 20.0});
  plan.joins.push_back({1, 10.0});
  plan.crashes.push_back({3, 5.0, 15.0});
  plan.link_changes.push_back({0, 1, 12.0, /*add=*/false});
  ChurnSchedule sched(plan, 9);
  std::vector<std::string> kinds;
  for (const auto& ev : sched.events()) {
    kinds.push_back(ChurnSchedule::KindName(ev.kind));
  }
  EXPECT_EQ(kinds, (std::vector<std::string>{"crash", "join", "link_remove",
                                             "repair", "leave"}));
  for (size_t i = 1; i < sched.events().size(); ++i) {
    EXPECT_LE(sched.events()[i - 1].at, sched.events()[i].at);
  }
}

// -- Network under churn ------------------------------------------------------

class ChurnProbe : public Node {
 public:
  void HandleMessage(int from, const Message& msg) override {
    (void)from;
    received.push_back(msg.type);
  }
  void HandleTimer(int timer_id) override { timers.push_back(timer_id); }
  void OnRestart() override { restarts.push_back(network()->Now()); }
  void OnNeighborChange(int neighbor, bool up) override {
    changes.push_back({network()->Now(), neighbor, up});
  }
  struct Change {
    double at;
    int neighbor;
    bool up;
    bool operator==(const Change& o) const {
      return at == o.at && neighbor == o.neighbor && up == o.up;
    }
  };
  std::vector<int> received;
  std::vector<int> timers;
  std::vector<double> restarts;
  std::vector<Change> changes;
};

std::unique_ptr<Network> MakeChurnGrid(ChurnPlan plan, FaultPlan fault = {}) {
  Network::Config cfg;
  cfg.seed = 5;
  cfg.fault = std::move(fault);
  cfg.churn = std::move(plan);
  auto net = std::make_unique<Network>(MakeGridTopology(3, 3), cfg);
  net->InstallNodes([](int) { return std::make_unique<ChurnProbe>(); });
  return net;
}

ChurnProbe* Probe(Network* net, int id) {
  return static_cast<ChurnProbe*>(net->node(id));
}

Message Msg(int type) {
  Message m;
  m.type = type;
  m.category = "t";
  return m;
}

TEST(NetworkChurnTest, DepartedReceiverDropsAndCounts) {
  ChurnPlan plan;
  plan.leaves.push_back({1, 10.0});
  auto net = MakeChurnGrid(plan);
  net->ScheduleAfter(20.0, [n = net.get()]() { n->Send(0, 1, Msg(7)); });
  net->Run();
  EXPECT_TRUE(Probe(net.get(), 1)->received.empty());
  EXPECT_EQ(net->stats().dropped_sends(), 1u);
  EXPECT_EQ(net->churn_drops(), 1u);
}

TEST(NetworkChurnTest, JoinRestartsAndNotifiesNeighbors) {
  ChurnPlan plan;
  plan.joins.push_back({4, 10.0});  // Grid center; neighbors 1, 3, 5, 7.
  auto net = MakeChurnGrid(plan);
  Network* n = net.get();
  EXPECT_FALSE(net->IsPresent(4));
  // Before the join: sends to 4 sink into the churn layer.
  net->ScheduleAfter(5.0, [n]() { n->Send(1, 4, Msg(1)); });
  net->ScheduleAfter(20.0, [n]() { n->Send(1, 4, Msg(2)); });
  net->Run();
  EXPECT_EQ(Probe(n, 4)->received, (std::vector<int>{2}));
  EXPECT_EQ(net->churn_drops(), 1u);
  EXPECT_TRUE(net->IsPresent(4));
  // The join restarted node 4 exactly once, at the join instant.
  EXPECT_EQ(Probe(n, 4)->restarts, (std::vector<double>{10.0}));
  // Neighbor 1 saw 4 down at t=0 (late joiner) and up at the join.
  EXPECT_EQ(Probe(n, 1)->changes,
            (std::vector<ChurnProbe::Change>{{0.0, 4, false}, {10.0, 4, true}}));
}

TEST(NetworkChurnTest, CrashRepairCycleRestartsAndOrphansTimers) {
  ChurnPlan plan;
  plan.crashes.push_back({4, 5.0, 15.0});
  auto net = MakeChurnGrid(plan);
  Network* n = net.get();
  net->SetTimer(4, 8.0, 1);   // Fires while absent: suppressed.
  net->SetTimer(4, 20.0, 2);  // Pre-crash timer, post-repair fire: orphaned.
  net->ScheduleAfter(16.0, [n]() { n->SetTimer(4, 2.0, 3); });
  net->Run();
  EXPECT_EQ(Probe(n, 4)->timers, (std::vector<int>{3}));
  EXPECT_EQ(Probe(n, 4)->restarts, (std::vector<double>{15.0}));
  // Neighbor 3 saw the full down/up cycle.
  EXPECT_EQ(Probe(n, 3)->changes,
            (std::vector<ChurnProbe::Change>{{5.0, 4, false}, {15.0, 4, true}}));
}

TEST(NetworkChurnTest, LinkRemoveDropsSendsAndReroutes) {
  ChurnPlan plan;
  plan.link_changes.push_back({0, 1, 10.0, /*add=*/false});
  auto net = MakeChurnGrid(plan);
  Network* n = net.get();
  net->ScheduleAfter(5.0, [n]() { n->Send(0, 1, Msg(1)); });
  net->ScheduleAfter(20.0, [n]() { n->Send(0, 1, Msg(2)); });
  // Routed traffic re-routes around the removed edge instead of dying.
  net->ScheduleAfter(20.0, [n]() { EXPECT_EQ(n->SendRouted(0, 1, Msg(3)), 3); });
  net->Run();
  EXPECT_EQ(Probe(n, 1)->received, (std::vector<int>{1, 3}));
  EXPECT_EQ(net->churn_drops(), 1u);
  // Both endpoints were told the link went down.
  EXPECT_EQ(Probe(n, 0)->changes,
            (std::vector<ChurnProbe::Change>{{10.0, 1, false}}));
  EXPECT_EQ(Probe(n, 1)->changes,
            (std::vector<ChurnProbe::Change>{{10.0, 0, false}}));
  // Broadcast fan-out follows the live adjacency.
  EXPECT_EQ(Probe(n, 1)->changes.size(), 1u);
}

TEST(NetworkChurnTest, LinkAddCreatesNewEdge) {
  // 0 and 4 are not grid neighbors; the plan wires them directly.
  ChurnPlan plan;
  plan.link_changes.push_back({0, 4, 10.0, /*add=*/true});
  auto net = MakeChurnGrid(plan);
  Network* n = net.get();
  net->ScheduleAfter(20.0, [n]() { n->Send(0, 4, Msg(9)); });
  net->ScheduleAfter(20.0, [n]() { EXPECT_EQ(n->SendRouted(0, 4, Msg(8)), 1); });
  net->Run();
  EXPECT_EQ(Probe(n, 4)->received, (std::vector<int>{9, 8}));
  EXPECT_EQ(net->churn_drops(), 0u);
  EXPECT_EQ(Probe(n, 0)->changes,
            (std::vector<ChurnProbe::Change>{{10.0, 4, true}}));
}

TEST(NetworkChurnTest, PartitionedRoutedSendIsChurnDrop) {
  // Cut corner 0 off entirely (links 0-1 and 0-3); a routed send from the
  // island is a recorded churn drop, not a crash.
  ChurnPlan plan;
  plan.link_changes.push_back({0, 1, 5.0, /*add=*/false});
  plan.link_changes.push_back({0, 3, 5.0, /*add=*/false});
  auto net = MakeChurnGrid(plan);
  Network* n = net.get();
  net->ScheduleAfter(10.0, [n]() { EXPECT_EQ(n->SendRouted(0, 8, Msg(1)), 0); });
  net->Run();
  EXPECT_TRUE(Probe(n, 8)->received.empty());
  EXPECT_EQ(net->stats().dropped_sends(), 1u);
  EXPECT_EQ(net->churn_drops(), 1u);
}

TEST(NetworkChurnTest, ChurnNeverPerturbsFaultDraws) {
  // Identical fault plans, one run with an extra (non-interfering) churn
  // leave: the per-transmission fault decisions must be bit-identical, which
  // shows churn consumes nothing from the fault RNG stream.
  auto deliveries = [](bool with_churn) {
    FaultPlan fault;
    fault.drop_probability = 0.5;
    ChurnPlan churn;
    if (with_churn) churn.leaves.push_back({8, 1000.0});  // After the run.
    auto net = MakeChurnGrid(churn, fault);
    Network* n = net.get();
    for (int i = 0; i < 100; ++i) {
      net->ScheduleAfter(i + 1.0, [n, i]() { n->Send(0, 1, Msg(i)); });
    }
    net->Run();
    return Probe(n, 1)->received;
  };
  EXPECT_EQ(deliveries(false), deliveries(true));
}

TEST(NetworkChurnTest, SameSeedSamePlanIsDeterministic) {
  auto run = []() {
    ChurnPlan plan;
    plan.crashes.push_back({4, 5.0, 15.0});
    plan.link_changes.push_back({0, 1, 8.0, /*add=*/false});
    FaultPlan fault;
    fault.drop_probability = 0.2;
    auto net = MakeChurnGrid(plan, fault);
    Network* n = net.get();
    for (int i = 0; i < 50; ++i) {
      net->ScheduleAfter(i + 0.5, [n, i]() { n->Broadcast(i % 9, Msg(i)); });
    }
    net->Run();
    return net->stats().ToString();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace elink
