// Regression corpus for the scenario fuzzer (src/check): every seed that
// ever exposed a bug is pinned here as a named case, plus a smoke sweep per
// protocol so new regressions surface in ctest before the deep CI sweep.
//
// To reproduce any failure interactively:
//   bench/check_fuzz --seed=<S> --protocol=<P>
#include <gtest/gtest.h>

#include "check/runner.h"

namespace elink {
namespace check {
namespace {

// -- Pinned findings --------------------------------------------------------

TEST(CheckFuzzRegressionTest, MaintenanceDetachUnderLossSeed4) {
  // Found by check_fuzz: a node that detached (StartDetach) and whose probe
  // replies were then lost stayed a self-rooted singleton with the root-role
  // fields (announced_/stored_root_) never initialized; the next local
  // update crashed WeightedEuclidean on an empty feature.  Fixed by making
  // StartDetach set the root-role state immediately.
  const CheckOutcome out = RunScenario(Protocol::kMaintenance, 4);
  EXPECT_TRUE(out.ok()) << out.Summary();
}

TEST(CheckFuzzRegressionTest, MaintenanceDetachUnderLossSeed12) {
  // Second seed of the same StartDetach finding; kept because its fault mix
  // (truncation + loss) reaches the crash through the RootChanged path.
  const CheckOutcome out = RunScenario(Protocol::kMaintenance, 12);
  EXPECT_TRUE(out.ok()) << out.Summary();
}

TEST(CheckFuzzRegressionTest, MaintenanceMutualAdoptionCycleSeed412) {
  // Found by the churn-isolated sweep, but a pure legacy-path bug (the
  // minimal repro disables churn too): on a linear topology under async
  // delays, a root's feature push evicted node 1, whose re-probe read
  // neighbor 0's not-yet-updated stored root feature and re-adopted into
  // the stale cluster; node 0's own eviction then crossed node 1's Attach,
  // and 0 adopted 1 back — a parent 2-cycle disconnected from the real
  // tree, forwarding RootChanged to each other forever (event-cap
  // livelock).  Fixed three ways: the RootChanged idempotence guard is
  // unconditional, a node never adopts its own current child, and a
  // relabel that lands out of range evicts unconditionally.
  ScenarioKnobs knobs;
  knobs.faults = false;
  knobs.reliable = false;
  knobs.slack = false;
  const CheckOutcome out = RunScenario(Protocol::kMaintenance, 412, knobs);
  EXPECT_TRUE(out.ok()) << out.Summary();
}

TEST(CheckFuzzRegressionTest, ReliableRoutedSelfAckSeed62) {
  // Found by check_fuzz: ReliableChannel acked a routed self-delivery
  // (rel_from == from == self) with Network::Send(self, self), which fails
  // the HasEdge check — there is no self edge.  Fixed by routing the ack
  // whenever the originator is the receiving node itself.
  const CheckOutcome out = RunScenario(Protocol::kRangeQuery, 62);
  EXPECT_TRUE(out.ok()) << out.Summary();
}

TEST(CheckFuzzRegressionTest, ReliableRoutedSelfAckAllSeeds) {
  // The remaining seeds of the self-ack finding from the first 1000-seed
  // sweep; cheap enough to keep wholesale.
  const uint64_t kSeeds[] = {66,  99,  104, 108, 115, 129, 135, 217,
                             235, 237, 389, 449, 481, 483, 621, 634,
                             893, 931, 942, 962, 973, 984, 988};
  for (const uint64_t seed : kSeeds) {
    const CheckOutcome out = RunScenario(Protocol::kRangeQuery, seed);
    EXPECT_TRUE(out.ok()) << "seed " << seed << ": " << out.Summary();
  }
}

// -- Smoke sweeps -----------------------------------------------------------
//
// One hundred scenarios per protocol on every ctest run.  The CI check-fuzz
// job runs the same harness ten times deeper (bench/check_fuzz
// --scenarios=1000); these keep local runs honest.

class CheckFuzzSmokeTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(CheckFuzzSmokeTest, HundredScenariosHoldAllInvariants) {
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    const CheckOutcome out = RunScenario(GetParam(), seed);
    EXPECT_TRUE(out.ok()) << "seed " << seed << ": " << out.Summary()
                          << "\n  repro: bench/check_fuzz --seed=" << seed
                          << " --protocol=" << ProtocolName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, CheckFuzzSmokeTest,
                         ::testing::ValuesIn(AllProtocols()),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return std::string(ProtocolName(info.param)) ==
                                          "range_query"
                                      ? "RangeQuery"
                                  : std::string(ProtocolName(info.param)) ==
                                          "path_query"
                                      ? "PathQuery"
                                  : std::string(ProtocolName(info.param)) ==
                                          "maintenance"
                                      ? "Maintenance"
                                      : "Elink";
                         });

}  // namespace
}  // namespace check
}  // namespace elink
