// Tests for src/sim: event queue, topologies, graph utilities, network
// message delivery / routing / timers / accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/graph.h"
#include "sim/network.h"
#include "sim/topology.h"

namespace elink {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.Now(), 3.0);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] {
    ++fired;
    q.ScheduleAfter(1.0, [&] { ++fired; });
  });
  EXPECT_EQ(q.RunAll(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.Now(), 2.0);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] { ++fired; });
  q.ScheduleAt(2.0, [&] { ++fired; });
  q.ScheduleAt(3.0, [&] { ++fired; });
  EXPECT_EQ(q.RunUntil(2.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.Size(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesNowToHorizon) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] { ++fired; });
  EXPECT_EQ(q.RunUntil(5.0), 1u);
  // The queue drained at t=1, but the caller simulated up to t=5: Now() is
  // the horizon, so relative scheduling continues from there.
  EXPECT_DOUBLE_EQ(q.Now(), 5.0);
  q.ScheduleAfter(1.0, [&] { ++fired; });
  q.RunAll();
  EXPECT_DOUBLE_EQ(q.Now(), 6.0);
  EXPECT_EQ(fired, 2);
  // An empty RunUntil also advances, and never moves time backwards.
  EXPECT_EQ(q.RunUntil(10.0), 0u);
  EXPECT_DOUBLE_EQ(q.Now(), 10.0);
  EXPECT_EQ(q.RunUntil(4.0), 0u);
  EXPECT_DOUBLE_EQ(q.Now(), 10.0);
}

TEST(EventQueueTest, MoveOnlyPayloadsPopWithoutCopying) {
  EventQueue q;
  // std::function would reject this closure outright (not copyable); the
  // old queue additionally deep-copied every closure on pop.
  auto payload = std::make_unique<int>(41);
  int seen = 0;
  q.ScheduleAt(1.0, [p = std::move(payload), &seen] { seen = *p + 1; });
  // A payload large enough to force the heap storage path as well.
  struct Big {
    double vals[16];
  };
  Big big{};
  big.vals[7] = 8.0;
  double big_seen = 0.0;
  q.ScheduleAt(2.0, [big, &big_seen] { big_seen = big.vals[7]; });
  q.RunAll();
  EXPECT_EQ(seen, 42);
  EXPECT_DOUBLE_EQ(big_seen, 8.0);
}

TEST(EventQueueTest, PeakSizeTracksHighWater) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(static_cast<double>(i), [] {});
  }
  EXPECT_EQ(q.PeakSize(), 10u);
  q.RunAll();
  EXPECT_EQ(q.Size(), 0u);
  EXPECT_EQ(q.PeakSize(), 10u);
  q.ScheduleAt(q.Now(), [] {});
  EXPECT_EQ(q.PeakSize(), 10u);
}

// Stress with heavy timestamp collisions and reschedules from inside
// callbacks: the dispatch order must match a reference model that stably
// sorts by time — i.e. exact (time, insertion-sequence) order.  Exercises
// bucket reuse, hash-table growth and backward-shift deletion, and
// same-time scheduling at Now() during dispatch.
TEST(EventQueueTest, TieHeavyOrderMatchesStableSortModel) {
  EventQueue q;
  Rng rng(99);
  std::vector<std::pair<double, int>> scheduled;  // (time, id) in seq order
  std::vector<int> fired;
  int next_id = 0;

  // 9 distinct base times, many events per time, interleaved insertion.
  auto schedule = [&](double time) {
    const int id = next_id++;
    scheduled.emplace_back(time, id);
    q.ScheduleAt(time, [id, &fired] { fired.push_back(id); });
  };
  for (int round = 0; round < 200; ++round) {
    schedule(static_cast<double>(rng.UniformInt(9)) * 0.5);
  }
  // Chains that re-enter the queue from inside callbacks, half landing on
  // already-populated times (including exactly Now()).
  for (int chain = 0; chain < 50; ++chain) {
    const double t = static_cast<double>(rng.UniformInt(9)) * 0.5;
    const int id = next_id++;
    scheduled.emplace_back(t, id);
    q.ScheduleAt(t, [id, t, chain, &fired, &scheduled, &next_id, &q] {
      fired.push_back(id);
      const double tn = (chain % 2 == 0) ? t : t + 0.25;
      const int id2 = next_id++;
      scheduled.emplace_back(tn, id2);
      q.ScheduleAt(tn, [id2, &fired] { fired.push_back(id2); });
    });
  }
  q.RunAll();

  ASSERT_EQ(fired.size(), scheduled.size());
  // Reference: stable sort by time keeps insertion order within ties.  The
  // chained events were appended to `scheduled` mid-run, but always with a
  // time >= every already-fired time, so the model stays valid.
  std::stable_sort(scheduled.begin(), scheduled.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (size_t i = 0; i < scheduled.size(); ++i) {
    EXPECT_EQ(fired[i], scheduled[i].second) << "at dispatch " << i;
  }
}

TEST(TopologyTest, GridStructure) {
  Topology t = MakeGridTopology(3, 4);
  EXPECT_EQ(t.num_nodes(), 12);
  // Interior node 5 = (row 1, col 1) has 4 neighbors.
  EXPECT_EQ(t.adjacency[5].size(), 4u);
  // Corner 0 has 2.
  EXPECT_EQ(t.adjacency[0].size(), 2u);
  EXPECT_TRUE(t.HasEdge(0, 1));
  EXPECT_TRUE(t.HasEdge(0, 4));
  EXPECT_FALSE(t.HasEdge(0, 5));
  // Grid edges: 3*3 horizontal + 2*4 vertical = 17.
  EXPECT_EQ(t.num_edges(), 17);
  EXPECT_EQ(t.max_degree(), 4);
  EXPECT_TRUE(IsConnected(t.adjacency));
}

TEST(TopologyTest, RandomTopologyIsConnectedAndInBounds) {
  Rng rng(71);
  Result<Topology> t = MakeRandomTopology(60, 10.0, 1.6, &rng);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(IsConnected(t.value().adjacency));
  for (const auto& p : t.value().positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 10.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 10.0);
  }
}

TEST(TopologyTest, RandomTopologyAdjacencySymmetric) {
  Rng rng(73);
  Result<Topology> t = MakeRandomTopology(40, 8.0, 1.5, &rng);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < t.value().num_nodes(); ++i) {
    for (int j : t.value().adjacency[i]) {
      EXPECT_TRUE(t.value().HasEdge(j, i));
    }
  }
}

TEST(TopologyTest, DegreeCalibrationIsReasonable) {
  Rng rng(79);
  Result<Topology> t = MakeRandomTopologyWithDegree(300, 0.8, 4.0, &rng);
  ASSERT_TRUE(t.ok());
  // Forced connectivity can raise the degree above the target; it must at
  // least reach it and stay within a sane band.
  EXPECT_GE(t.value().average_degree(), 3.0);
  EXPECT_LE(t.value().average_degree(), 10.0);
}

TEST(TopologyTest, RejectsBadArguments) {
  Rng rng(83);
  EXPECT_FALSE(MakeRandomTopology(0, 1.0, 0.5, &rng).ok());
  EXPECT_FALSE(MakeRandomTopology(5, -1.0, 0.5, &rng).ok());
  EXPECT_FALSE(MakeRandomTopologyWithDegree(5, 0.0, 4.0, &rng).ok());
}

TEST(GraphTest, HopDistancesOnGrid) {
  Topology t = MakeGridTopology(3, 3);
  const auto dist = HopDistancesFrom(t.adjacency, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[8], 4);  // Opposite corner: Manhattan distance.
  EXPECT_EQ(dist[4], 2);
}

TEST(GraphTest, BfsTreeParentsRootAndReachability) {
  Topology t = MakeGridTopology(2, 3);
  const auto parent = BfsTreeParents(t.adjacency, 0);
  EXPECT_EQ(parent[0], 0);
  for (int i = 1; i < 6; ++i) {
    EXPECT_GE(parent[i], 0);
    EXPECT_NE(parent[i], i);
  }
}

TEST(GraphTest, ComponentsOfDisconnectedGraph) {
  AdjacencyList adj = {{1}, {0}, {3}, {2}, {}};
  EXPECT_FALSE(IsConnected(adj));
  const auto comp = ConnectedComponents(adj);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[0]);
  EXPECT_NE(comp[4], comp[2]);
}

TEST(GraphTest, InducedComponentsRespectMask) {
  // Path 0-1-2-3; removing node 1 splits {0} from {2,3}.
  AdjacencyList adj = {{1}, {0, 2}, {1, 3}, {2}};
  std::vector<char> mask = {1, 0, 1, 1};
  const auto comp = InducedComponents(adj, mask);
  EXPECT_EQ(comp[1], -1);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_FALSE(IsInducedConnected(adj, mask));
  mask[1] = 1;
  EXPECT_TRUE(IsInducedConnected(adj, mask));
}

TEST(GraphTest, ShortestHopPathEndpointsAndLength) {
  Topology t = MakeGridTopology(3, 3);
  const auto path = ShortestHopPath(t.adjacency, 0, 8);
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 8);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(t.HasEdge(path[i], path[i + 1]));
  }
}

TEST(GraphTest, RoutingTableMatchesBfs) {
  Topology t = MakeGridTopology(4, 4);
  RoutingTable rt(t.adjacency, 5);
  const auto dist = HopDistancesFrom(t.adjacency, 5);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(rt.HopsToRoot(i), dist[i]);
  }
  EXPECT_EQ(rt.NextHopToRoot(5), -1);
  // Following next hops from any node reaches the root in HopsToRoot steps.
  int cur = 15, steps = 0;
  while (cur != 5) {
    cur = rt.NextHopToRoot(cur);
    ++steps;
  }
  EXPECT_EQ(steps, rt.HopsToRoot(15));
}

// -- Network ------------------------------------------------------------------

/// Node that counts received messages and echoes on request.
class RecorderNode : public Node {
 public:
  void HandleMessage(int from, const Message& msg) override {
    received.push_back({from, msg});
    if (msg.type == 99) {  // Echo request.
      Message reply;
      reply.type = 100;
      reply.category = "echo";
      network()->Send(id(), from, reply);
    }
  }
  void HandleTimer(int timer_id) override { timers.push_back(timer_id); }

  std::vector<std::pair<int, Message>> received;
  std::vector<int> timers;
};

std::unique_ptr<Network> MakeTestNetwork(bool synchronous = true) {
  Network::Config cfg;
  cfg.synchronous = synchronous;
  cfg.seed = 5;
  auto net = std::make_unique<Network>(MakeGridTopology(3, 3), cfg);
  net->InstallNodes([](int) { return std::make_unique<RecorderNode>(); });
  return net;
}

TEST(NetworkTest, SendDeliversToNeighborWithUnitDelay) {
  auto net_ptr = MakeTestNetwork();
  Network& net = *net_ptr;
  Message m;
  m.type = 7;
  m.category = "test";
  m.doubles = {1.0, 2.0};
  net.Send(0, 1, m);
  net.Run();
  auto* n1 = static_cast<RecorderNode*>(net.node(1));
  ASSERT_EQ(n1->received.size(), 1u);
  EXPECT_EQ(n1->received[0].first, 0);
  EXPECT_EQ(n1->received[0].second.type, 7);
  EXPECT_DOUBLE_EQ(net.Now(), 1.0);
  EXPECT_EQ(net.stats().total_sends(), 1u);
  EXPECT_EQ(net.stats().total_units(), 2u);  // Two coefficients.
  EXPECT_EQ(net.stats().units("test"), 2u);
}

TEST(NetworkTest, BroadcastReachesAllNeighbors) {
  auto net_ptr = MakeTestNetwork();
  Network& net = *net_ptr;
  Message m;
  m.type = 1;
  m.category = "bc";
  net.Broadcast(4, m);  // Center of the 3x3 grid: 4 neighbors.
  net.Run();
  EXPECT_EQ(net.stats().sends("bc"), 4u);
  for (int nb : {1, 3, 5, 7}) {
    EXPECT_EQ(static_cast<RecorderNode*>(net.node(nb))->received.size(), 1u);
  }
}

TEST(NetworkTest, SendRoutedChargesPerHop) {
  auto net_ptr = MakeTestNetwork();
  Network& net = *net_ptr;
  Message m;
  m.type = 2;
  m.category = "routed";
  const int hops = net.SendRouted(0, 8, m);
  EXPECT_EQ(hops, 4);
  net.Run();
  EXPECT_EQ(net.stats().sends("routed"), 4u);
  auto* n8 = static_cast<RecorderNode*>(net.node(8));
  ASSERT_EQ(n8->received.size(), 1u);
  // Sender seen by the destination is the penultimate node on the route.
  EXPECT_TRUE(net.topology().HasEdge(n8->received[0].first, 8));
  EXPECT_DOUBLE_EQ(net.Now(), 4.0);
}

TEST(NetworkTest, SendRoutedToSelfIsLocal) {
  auto net_ptr = MakeTestNetwork();
  Network& net = *net_ptr;
  Message m;
  m.type = 3;
  m.category = "self";
  EXPECT_EQ(net.SendRouted(4, 4, m), 0);
  net.Run();
  EXPECT_EQ(net.stats().total_sends(), 0u);
  EXPECT_EQ(static_cast<RecorderNode*>(net.node(4))->received.size(), 1u);
}

TEST(NetworkTest, HopDistanceMatchesGraph) {
  auto net_ptr = MakeTestNetwork();
  Network& net = *net_ptr;
  EXPECT_EQ(net.HopDistance(0, 8), 4);
  EXPECT_EQ(net.HopDistance(3, 3), 0);
}

TEST(NetworkTest, TimersFire) {
  auto net_ptr = MakeTestNetwork();
  Network& net = *net_ptr;
  net.SetTimer(2, 5.0, 42);
  net.SetTimer(2, 1.0, 43);
  net.Run();
  auto* n2 = static_cast<RecorderNode*>(net.node(2));
  EXPECT_EQ(n2->timers, (std::vector<int>{43, 42}));
  EXPECT_DOUBLE_EQ(net.Now(), 5.0);
}

TEST(NetworkTest, EchoRoundTrip) {
  auto net_ptr = MakeTestNetwork();
  Network& net = *net_ptr;
  Message m;
  m.type = 99;
  m.category = "ping";
  net.Send(3, 4, m);
  net.Run();
  auto* n3 = static_cast<RecorderNode*>(net.node(3));
  ASSERT_EQ(n3->received.size(), 1u);
  EXPECT_EQ(n3->received[0].second.type, 100);
  EXPECT_DOUBLE_EQ(net.Now(), 2.0);
}

TEST(NetworkTest, AsynchronousDelaysVaryButDeliver) {
  auto net_ptr = MakeTestNetwork(/*synchronous=*/false);
  Network& net = *net_ptr;
  Message m;
  m.type = 1;
  m.category = "a";
  net.Send(0, 1, m);
  net.Send(0, 3, m);
  net.Run();
  EXPECT_EQ(static_cast<RecorderNode*>(net.node(1))->received.size(), 1u);
  EXPECT_EQ(static_cast<RecorderNode*>(net.node(3))->received.size(), 1u);
  EXPECT_GT(net.Now(), 0.0);
  EXPECT_LT(net.Now(), 1.5 + 1e-9);
}

TEST(MessageStatsTest, MergeAndReset) {
  MessageStats a, b;
  a.Record("x", 2);
  b.Record("x", 3);
  b.Record("y", 1);
  a.Merge(b);
  EXPECT_EQ(a.total_units(), 6u);
  EXPECT_EQ(a.units("x"), 5u);
  EXPECT_EQ(a.units("y"), 1u);
  EXPECT_EQ(a.total_sends(), 3u);
  a.Reset();
  EXPECT_EQ(a.total_units(), 0u);
  EXPECT_EQ(a.units("x"), 0u);
}

TEST(MessageStatsTest, DroppedSendsStayOutOfDeliveredTotals) {
  MessageStats s;
  s.Record("x", 2);
  s.RecordDropped("x", 3);
  s.RecordDropped("y", 1);
  EXPECT_EQ(s.total_sends(), 1u);
  EXPECT_EQ(s.total_units(), 2u);
  EXPECT_EQ(s.dropped_sends(), 2u);
  EXPECT_EQ(s.dropped_units(), 4u);
  EXPECT_EQ(s.dropped("x"), 3u);
  EXPECT_EQ(s.dropped("y"), 1u);
  EXPECT_EQ(s.dropped("z"), 0u);

  MessageStats other;
  other.RecordDropped("x", 2);
  s.Merge(other);
  EXPECT_EQ(s.dropped_units(), 6u);
  EXPECT_EQ(s.dropped("x"), 5u);
  EXPECT_EQ(s.total_units(), 2u);  // Merge does not mix the ledgers.

  s.Reset();
  EXPECT_EQ(s.dropped_sends(), 0u);
  EXPECT_EQ(s.dropped_units(), 0u);
  EXPECT_TRUE(s.dropped_by_category().empty());
}

TEST(MessageStatsTest, MergeCarriesPerCategoryDropsAndDecodeErrors) {
  // Regression: a merge must carry every per-category counter — dropped
  // units/sends and decode errors — not just delivered units, for both
  // disjoint categories (interned fresh in the destination) and overlapping
  // ones (ids differ between the two ledgers).
  MessageStats a;
  a.Record("shared", 1);
  a.RecordDropped("shared", 2);
  a.RecordDecodeError("shared");
  a.RecordDropped("only_a", 4);

  MessageStats b;
  b.RecordDropped("only_b", 7);     // Disjoint: never seen by `a`.
  b.RecordDropped("shared", 3);     // Overlapping, different id in `b`.
  b.RecordDecodeError("shared");
  b.RecordDecodeError("only_b");
  b.Record("only_b", 5);

  a.Merge(b);
  EXPECT_EQ(a.dropped("shared"), 5u);
  EXPECT_EQ(a.dropped("only_a"), 4u);
  EXPECT_EQ(a.dropped("only_b"), 7u);
  EXPECT_EQ(a.dropped_units(), 16u);
  EXPECT_EQ(a.dropped_sends(), 4u);
  EXPECT_EQ(a.decode_errors(), 3u);
  EXPECT_EQ(a.decode_errors("shared"), 2u);
  EXPECT_EQ(a.decode_errors("only_b"), 1u);
  EXPECT_EQ(a.units("shared"), 1u);
  EXPECT_EQ(a.units("only_b"), 5u);
  const auto& dropped_view = a.dropped_by_category();
  ASSERT_EQ(dropped_view.size(), 3u);
  EXPECT_EQ(dropped_view.at("only_b"), 7u);

  // Merging into a fresh ledger (all categories disjoint) preserves the
  // combined picture too.
  MessageStats fresh;
  fresh.Merge(a);
  EXPECT_EQ(fresh.dropped("shared"), 5u);
  EXPECT_EQ(fresh.decode_errors("shared"), 2u);
  EXPECT_EQ(fresh.dropped_units(), a.dropped_units());
  EXPECT_EQ(fresh.decode_errors(), a.decode_errors());
}

TEST(MessageStatsTest, ToStringMentionsDropsOnlyWhenPresent) {
  MessageStats s;
  s.Record("x", 1);
  EXPECT_EQ(s.ToString().find("dropped"), std::string::npos);
  s.RecordDropped("x", 1);
  EXPECT_NE(s.ToString().find("dropped"), std::string::npos);
}

/// A protocol that re-arms its own timer forever: the event queue never
/// drains, so Run must stop at the cap and flag it instead of aborting.
class LivelockNode : public Node {
 public:
  void HandleMessage(int, const Message&) override {}
  void HandleTimer(int timer_id) override {
    network()->SetTimer(id(), 1.0, timer_id);
  }
};

TEST(NetworkTest, EventCapIsRecoverable) {
  Network::Config cfg;
  auto net = std::make_unique<Network>(MakeGridTopology(2, 2), cfg);
  net->InstallNodes([](int) { return std::make_unique<LivelockNode>(); });
  net->SetTimer(0, 1.0, 1);
  EXPECT_FALSE(net->hit_event_cap());
  EXPECT_EQ(net->Run(/*max_events=*/100), 100u);
  EXPECT_TRUE(net->hit_event_cap());
  // A later run that drains resets the flag.
  auto quiet = std::make_unique<Network>(MakeGridTopology(2, 2), cfg);
  quiet->InstallNodes([](int) { return std::make_unique<LivelockNode>(); });
  quiet->Run();
  EXPECT_FALSE(quiet->hit_event_cap());
}

TEST(MessageTest, CostUnitsRules) {
  Message empty;
  EXPECT_EQ(empty.CostUnits(), 1);
  Message with_payload;
  with_payload.doubles = {1, 2, 3, 4};
  EXPECT_EQ(with_payload.CostUnits(), 4);
}

}  // namespace
}  // namespace elink
