// Snapshot/restore equivalence suite (check/snapshot.h).
//
// Checkpoints fuzz trials mid-run at fuzzed event indices across all four
// protocols — churn-active scenarios included — and proves every resumed
// run byte-identical to its uninterrupted twin: the replayed capture must
// reproduce the archive bit for bit, and the instrumented run's final
// reports must equal the plain run's.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "check/runner.h"
#include "check/scenario.h"
#include "check/snapshot.h"
#include "common/rng.h"
#include "proto/snapshot.h"

namespace elink {
namespace check {
namespace {

/// Knobs for the equivalence sweep: the full scenario space, minus the
/// wire-format mutation pass (orthogonal to snapshotting and covered by
/// proto_test / check_fuzz).
ScenarioKnobs SweepKnobs() {
  ScenarioKnobs knobs;
  knobs.wirefuzz = false;
  return knobs;
}

TEST(SnapshotEquivalenceTest, FuzzedCheckpointsRoundTripAllProtocols) {
  const ScenarioKnobs knobs = SweepKnobs();
  Rng rng(77);
  int verified = 0;
  int churn_active = 0;
  for (const Protocol protocol : AllProtocols()) {
    for (uint64_t seed = 1; seed <= 25; ++seed) {
      const uint64_t total = CountTrialEvents(protocol, seed, knobs);
      ASSERT_GT(total, 0u) << ProtocolName(protocol) << " seed " << seed;
      const uint64_t index = 1 + rng.UniformInt(total);
      Result<SnapshotCapture> cap =
          CaptureSnapshot(protocol, seed, knobs, index);
      ASSERT_TRUE(cap.ok())
          << ProtocolName(protocol) << " seed " << seed << " index " << index
          << ": " << cap.status().ToString();
      EXPECT_TRUE(cap->outcome.ok()) << cap->outcome.Summary();
      EXPECT_EQ(cap->checkpoint, index);
      ASSERT_FALSE(cap->archive.empty());
      const Status restored = VerifySnapshot(cap->archive);
      EXPECT_TRUE(restored.ok())
          << ProtocolName(protocol) << " seed " << seed << " index " << index
          << ": " << restored.ToString();
      if (cap->outcome.scenario.churn.enabled()) ++churn_active;
      ++verified;
    }
  }
  EXPECT_EQ(verified, 100);
  // The sweep must really cover topology dynamics, not just static runs.
  EXPECT_GT(churn_active, 10);
}

TEST(SnapshotEquivalenceTest, ArchiveCarriesEveryStandardSection) {
  const Protocol protocol = Protocol::kElink;
  const uint64_t seed = 3;
  const ScenarioKnobs knobs = SweepKnobs();
  const uint64_t total = CountTrialEvents(protocol, seed, knobs);
  const uint64_t index = total / 2 + 1;
  Result<SnapshotCapture> cap = CaptureSnapshot(protocol, seed, knobs, index);
  ASSERT_TRUE(cap.ok()) << cap.status().ToString();

  Result<proto::SnapshotReader> reader =
      proto::SnapshotReader::Parse(cap->archive);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  for (const char* name :
       {proto::kSectionManifest, proto::kSectionHorizon, proto::kSectionStats,
        proto::kSectionNodes, proto::kSectionLedger}) {
    EXPECT_NE(reader->section(name), nullptr) << "missing section " << name;
  }

  const Result<std::map<std::string, std::string>> manifest =
      proto::DecodeManifestSection(*reader->section(proto::kSectionManifest));
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->at("protocol"), ProtocolName(protocol));
  EXPECT_EQ(manifest->at("seed"), std::to_string(seed));
  EXPECT_EQ(manifest->at("disable"), knobs.DisableList());
  EXPECT_EQ(manifest->at("checkpoint"), std::to_string(index));

  const Result<proto::HorizonImage> horizon =
      proto::DecodeHorizonSection(*reader->section(proto::kSectionHorizon));
  ASSERT_TRUE(horizon.ok());
  EXPECT_EQ(horizon->events, index);
}

TEST(SnapshotEquivalenceTest, CheckpointProbeIsUnobservable) {
  // The capture run (probe armed, snapshot taken mid-flight) must emit the
  // exact final reports of a plain run — the byte equality VerifySnapshot's
  // restore proof rests on.
  const Protocol protocol = Protocol::kMaintenance;
  const uint64_t seed = 11;
  const ScenarioKnobs knobs = SweepKnobs();
  const uint64_t total = CountTrialEvents(protocol, seed, knobs);
  Result<SnapshotCapture> cap =
      CaptureSnapshot(protocol, seed, knobs, total / 3 + 1);
  ASSERT_TRUE(cap.ok()) << cap.status().ToString();

  TrialArtifacts plain;
  RunScenario(protocol, seed, knobs, &plain);
  ASSERT_FALSE(plain.reports.empty());
  EXPECT_EQ(plain.reports, cap->artifacts.reports);
}

TEST(SnapshotEquivalenceTest, CheckpointPastEndOfRunFails) {
  const Protocol protocol = Protocol::kElink;
  const uint64_t seed = 5;
  const ScenarioKnobs knobs = SweepKnobs();
  const uint64_t total = CountTrialEvents(protocol, seed, knobs);
  const Result<SnapshotCapture> cap =
      CaptureSnapshot(protocol, seed, knobs, total + 1000);
  ASSERT_FALSE(cap.ok());
  EXPECT_EQ(cap.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotEquivalenceTest, TamperedArchiveFailsVerification) {
  const ScenarioKnobs knobs = SweepKnobs();
  const uint64_t total = CountTrialEvents(Protocol::kRangeQuery, 7, knobs);
  Result<SnapshotCapture> cap =
      CaptureSnapshot(Protocol::kRangeQuery, 7, knobs, total / 2 + 1);
  ASSERT_TRUE(cap.ok()) << cap.status().ToString();
  ASSERT_TRUE(VerifySnapshot(cap->archive).ok());

  std::vector<uint8_t> tampered = cap->archive;
  tampered[tampered.size() / 2] ^= 0x01;  // Lands in some CRC-covered span.
  EXPECT_FALSE(VerifySnapshot(tampered).ok());
}

TEST(SnapshotEquivalenceTest, ForgedManifestFailsReplayComparison) {
  // An archive whose sections are internally consistent but whose manifest
  // names a different seed: parsing succeeds, yet the replay of the claimed
  // scenario cannot reproduce the captured state and the proof must fail.
  const ScenarioKnobs knobs = SweepKnobs();
  const uint64_t total = CountTrialEvents(Protocol::kElink, 9, knobs);
  Result<SnapshotCapture> cap =
      CaptureSnapshot(Protocol::kElink, 9, knobs, total / 2 + 1);
  ASSERT_TRUE(cap.ok()) << cap.status().ToString();

  Result<proto::SnapshotReader> reader =
      proto::SnapshotReader::Parse(cap->archive);
  ASSERT_TRUE(reader.ok());
  Result<std::map<std::string, std::string>> manifest =
      proto::DecodeManifestSection(*reader->section(proto::kSectionManifest));
  ASSERT_TRUE(manifest.ok());
  (*manifest)["seed"] = "10";  // Forge the scenario identity.

  proto::SnapshotWriter forger;
  for (const std::string& name : reader->section_names()) {
    std::vector<uint8_t> body =
        name == proto::kSectionManifest
            ? proto::EncodeManifestSection(*manifest)
            : *reader->section(name);
    ASSERT_TRUE(forger.AddSection(name, std::move(body)).ok());
  }
  const std::vector<uint8_t> forged = forger.Finish();
  ASSERT_TRUE(proto::SnapshotReader::Parse(forged).ok());

  const Status verdict = VerifySnapshot(forged);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace check
}  // namespace elink
