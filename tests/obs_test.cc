// Tests for the observability layer: metrics primitives, the trace ring
// buffer and its exporters (including the byte-identity guarantee for
// same-seed runs), telemetry-built RunReports for all four protocols, and
// the no-observer run being bit-identical to an observed one.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cluster/elink.h"
#include "cluster/maintenance.h"
#include "cluster/maintenance_protocol.h"
#include "common/rng.h"
#include "data/terrain.h"
#include "index/backbone.h"
#include "index/mtree.h"
#include "index/path_query_protocol.h"
#include "index/query_protocol.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace elink {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;
using obs::RunReport;
using obs::RunTelemetry;
using obs::Tracer;

// -- Metrics primitives -----------------------------------------------------

TEST(HistogramTest, BucketsAreLogTwoSpaced) {
  EXPECT_EQ(Histogram::BucketOf(0.0), 0);
  EXPECT_EQ(Histogram::BucketOf(-3.0), 0);
  // Values within one power of two share a bucket; doubling moves one up.
  const int b1 = Histogram::BucketOf(1.0);
  EXPECT_EQ(Histogram::BucketOf(1.5), b1);
  EXPECT_EQ(Histogram::BucketOf(2.0), b1 + 1);
  EXPECT_EQ(Histogram::BucketOf(4.0), b1 + 2);
  // The lower bound of a value's bucket never exceeds the value.
  for (double v : {1e-7, 0.02, 1.0, 3.7, 1024.0, 9.9e11}) {
    const int b = Histogram::BucketOf(v);
    EXPECT_LE(Histogram::BucketLowerBound(b), v);
    if (b + 1 < Histogram::kNumBuckets) {
      EXPECT_GT(Histogram::BucketLowerBound(b + 1), v);
    }
  }
}

TEST(HistogramTest, RecordAndMergeTrackMoments) {
  Histogram a;
  a.Record(1.0);
  a.Record(3.0);
  Histogram b;
  b.Record(0.5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 4.5);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  // Empty histograms render zeros rather than sentinels.
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.min(), 0.0);
  EXPECT_DOUBLE_EQ(empty.max(), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 3u);
}

TEST(MetricsRegistryTest, MergeCombinesByNameAcrossInternOrders) {
  // Two workers intern the same metrics in different orders (as parallel
  // trial runners do); Merge must match by name, not by id.
  MetricsRegistry a;
  a.AddCounter("alpha", 2);
  a.AddCounter("beta", 3);
  a.RecordHistogram("h", 1.0);
  a.SetGauge("g", 1.5);

  MetricsRegistry b;
  b.AddCounter("beta", 10);
  b.AddCounter("gamma", 1);
  b.RecordHistogram("h", 4.0);
  b.SetGauge("g", 2.5);

  a.Merge(b);
  EXPECT_EQ(a.counter("alpha"), 2u);
  EXPECT_EQ(a.counter("beta"), 13u);
  EXPECT_EQ(a.counter("gamma"), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 2.5);  // Gauges: last writer wins.
  ASSERT_NE(a.histogram("h"), nullptr);
  EXPECT_EQ(a.histogram("h")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.histogram("h")->sum(), 5.0);

  // Serialization is sorted by name, so it is independent of intern order.
  MetricsRegistry c;
  c.AddCounter("gamma", 1);
  c.AddCounter("alpha", 2);
  c.AddCounter("beta", 13);
  c.RecordHistogram("h", 1.0);
  c.RecordHistogram("h", 4.0);
  c.SetGauge("g", 2.5);
  EXPECT_EQ(a.ToJson(), c.ToJson());
}

TEST(MetricsRegistryTest, ResetKeepsInternedIds) {
  MetricsRegistry m;
  const MetricsRegistry::MetricId id = m.CounterId("x");
  m.Add(id, 7);
  m.Reset();
  EXPECT_EQ(m.counter("x"), 0u);
  m.Add(id, 1);  // Id from before the reset still valid.
  EXPECT_EQ(m.counter("x"), 1u);
}

// -- Tracer -----------------------------------------------------------------

TEST(TracerTest, RingBufferOverwritesOldestAndCounts) {
  Tracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    tracer.OnTimerFire(static_cast<double>(i), /*node=*/0, /*timer_id=*/i);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.total_recorded(), 10u);
  EXPECT_EQ(tracer.overwritten(), 6u);
  // The retained window is the newest 4 events, oldest first.
  std::vector<long long> timer_ids;
  tracer.ForEach([&](const obs::TraceEvent& e) {
    EXPECT_EQ(e.kind, obs::TraceKind::kTimerFire);
    timer_ids.push_back(e.value);
  });
  EXPECT_EQ(timer_ids, (std::vector<long long>{6, 7, 8, 9}));
}

TEST(TracerTest, ExportersRenderEveryRetainedEvent) {
  Tracer tracer(/*capacity=*/64);
  Message msg;
  msg.type = 3;
  msg.category = "expand";
  tracer.OnSend(1.0, 0, 1, msg, 2.5);
  tracer.OnDeliver(3.5, 0, 1, msg);
  tracer.OnPhase(4.0, 1, "elink.round_complete", 2);
  tracer.OnWatchdogFire(9.0);

  const std::string jsonl = tracer.ExportJsonl();
  EXPECT_NE(jsonl.find("\"kind\":\"send\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"deliver\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"label\":\"elink.round_complete\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"watchdog_fire\""), std::string::npos);
  // One line per retained event.
  EXPECT_EQ(static_cast<size_t>(
                std::count(jsonl.begin(), jsonl.end(), '\n')),
            tracer.size());

  const std::string chrome = tracer.ExportChromeTrace();
  // Sends are complete events spanning the delay; the rest are instants.
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"dur\":2500"), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(chrome.find("\"traceEvents\":["), std::string::npos);
}

// -- End-to-end over the protocols ------------------------------------------

SensorDataset Terrain(int n, uint64_t seed = 9) {
  TerrainConfig cfg;
  cfg.num_nodes = n;
  cfg.radio_range_fraction = 0.1;
  cfg.seed = seed;
  return std::move(MakeTerrainDataset(cfg)).value();
}

struct TracedElinkRun {
  ElinkResult result;
  std::string jsonl;
  std::string chrome;
  RunReport report;
};

TracedElinkRun RunTracedElink(uint64_t seed) {
  const SensorDataset ds = Terrain(80);
  ElinkConfig cfg;
  cfg.delta = 0.3 * FeatureDiameter(ds);
  cfg.seed = seed;
  RunTelemetry telemetry;
  Tracer tracer(1 << 16);
  telemetry.set_next(&tracer);
  cfg.observer = &telemetry;
  Result<ElinkResult> r = RunElink(ds, cfg, ElinkMode::kExplicit);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  TracedElinkRun out;
  out.result = std::move(r).value();
  out.jsonl = tracer.ExportJsonl();
  out.chrome = tracer.ExportChromeTrace();
  out.report = telemetry.MakeReport("elink_explicit", seed, out.result.stats);
  return out;
}

TEST(ObservabilityIntegrationTest, SameSeedTracesAreByteIdentical) {
  const TracedElinkRun a = RunTracedElink(/*seed=*/11);
  const TracedElinkRun b = RunTracedElink(/*seed=*/11);
  ASSERT_FALSE(a.jsonl.empty());
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.chrome, b.chrome);
  EXPECT_EQ(a.report.ToJson(), b.report.ToJson());
}

TEST(ObservabilityIntegrationTest, AttachingObserverNeverChangesTheRun) {
  const SensorDataset ds = Terrain(80);
  ElinkConfig cfg;
  cfg.delta = 0.3 * FeatureDiameter(ds);
  cfg.seed = 11;
  Result<ElinkResult> plain = RunElink(ds, cfg, ElinkMode::kExplicit);
  ASSERT_TRUE(plain.ok());
  const TracedElinkRun traced = RunTracedElink(/*seed=*/11);
  EXPECT_EQ(plain.value().clustering.root_of,
            traced.result.clustering.root_of);
  EXPECT_DOUBLE_EQ(plain.value().completion_time,
                   traced.result.completion_time);
  EXPECT_EQ(plain.value().stats.total_units(),
            traced.result.stats.total_units());
}

TEST(ObservabilityIntegrationTest, ElinkReportCarriesDelayHistogram) {
  const TracedElinkRun run = RunTracedElink(/*seed=*/11);
  const Histogram* delay = run.report.metrics.histogram("message_delay");
  ASSERT_NE(delay, nullptr);
  EXPECT_GT(delay->count(), 0u);
  EXPECT_GT(delay->max(), 0.0);
  const Histogram* completion =
      run.report.metrics.histogram("node_completion");
  ASSERT_NE(completion, nullptr);
  EXPECT_GT(completion->count(), 0u);
  EXPECT_GT(run.report.metrics.counter("sim.sends"), 0u);
  EXPECT_GT(run.report.metrics.counter("phase.elink.round_complete"), 0u);
  EXPECT_EQ(run.report.protocol, "elink_explicit");
  EXPECT_EQ(run.report.total_units, run.result.stats.total_units());
  // The report serializes with the histogram embedded.
  const std::string json = run.report.ToJson();
  EXPECT_NE(json.find("\"message_delay\""), std::string::npos);
  EXPECT_NE(json.find("\"protocol\":\"elink_explicit\""), std::string::npos);
}

TEST(ObservabilityIntegrationTest, MaintenanceReportCarriesHistograms) {
  const SensorDataset ds = Terrain(60);
  const double delta = 0.3 * FeatureDiameter(ds);
  ElinkConfig cfg;
  cfg.delta = delta;
  cfg.seed = 7;
  Result<ElinkResult> clean = RunElink(ds, cfg, ElinkMode::kImplicit);
  ASSERT_TRUE(clean.ok());

  MaintenanceConfig mcfg;
  mcfg.delta = delta;
  mcfg.slack = 0.05 * delta;
  DistributedMaintenance maint(ds.topology, clean.value().clustering,
                               ds.features, ds.metric, mcfg);
  RunTelemetry telemetry;
  maint.set_observer(&telemetry);
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const int node = static_cast<int>(rng.UniformInt(60));
    Feature f = ds.features[node];
    for (double& x : f) x += rng.Uniform(2.0, 4.0) * delta;
    maint.ApplyUpdate(node, f);
  }
  const RunReport report =
      telemetry.MakeReport("maintenance", /*seed=*/1, maint.stats());
  const Histogram* delay = report.metrics.histogram("message_delay");
  ASSERT_NE(delay, nullptr);
  EXPECT_GT(delay->count(), 0u);
  // One OnRunEnd per ApplyUpdate: the run counter reflects the sequence.
  EXPECT_EQ(report.metrics.counter("harness.runs"), 10u);
  EXPECT_EQ(report.total_units, maint.stats().total_units());
}

TEST(ObservabilityIntegrationTest, QueryReportsCarryHistograms) {
  const SensorDataset ds = Terrain(80);
  const double delta = 0.3 * FeatureDiameter(ds);
  ElinkConfig cfg;
  cfg.delta = delta;
  cfg.seed = 7;
  Result<ElinkResult> clean = RunElink(ds, cfg, ElinkMode::kImplicit);
  ASSERT_TRUE(clean.ok());
  const Clustering& clustering = clean.value().clustering;
  const std::vector<int> tree =
      BuildClusterTrees(clustering, ds.topology.adjacency);
  const ClusterIndex index =
      ClusterIndex::Build(clustering, tree, ds.features, *ds.metric);
  const Backbone backbone =
      Backbone::Build(clustering, ds.topology.adjacency, nullptr,
                      &ds.features, ds.metric.get());

  // Range query.
  RunTelemetry range_tel;
  DistributedRangeQuery::ProtocolOptions qopt;
  qopt.observer = &range_tel;
  DistributedRangeQuery range(ds.topology, clustering, index, backbone,
                              ds.features, ds.metric, qopt);
  Result<DistributedQueryOutcome> out =
      range.Run(/*initiator=*/3, ds.features[10], 0.6 * delta);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const RunReport range_report =
      range_tel.MakeReport("range_query", 1, out.value().stats);
  ASSERT_NE(range_report.metrics.histogram("message_delay"), nullptr);
  EXPECT_GT(range_report.metrics.histogram("message_delay")->count(), 0u);
  EXPECT_GT(range_report.metrics.counter("phase.query.answer"), 0u);

  // Path query.
  RunTelemetry path_tel;
  PathProtocolOptions popt;
  popt.observer = &path_tel;
  DistributedPathQuery path(ds.topology, clustering, index, backbone,
                            ds.features, ds.metric, popt);
  Result<PathQueryResult> pr =
      path.Run(/*source=*/2, /*destination=*/70, ds.features[40],
               0.4 * delta);
  ASSERT_TRUE(pr.ok()) << pr.status().ToString();
  const RunReport path_report =
      path_tel.MakeReport("path_query", 1, pr.value().stats);
  ASSERT_NE(path_report.metrics.histogram("message_delay"), nullptr);
  EXPECT_GT(path_report.metrics.histogram("message_delay")->count(), 0u);
}

TEST(RunReportTest, ParamsRenderTyped) {
  RunReport report;
  report.protocol = "demo";
  report.seed = 42;
  report.SetParam("nodes", 100);
  report.SetParam("delta", 0.5);
  report.SetParam("mode", "explicit");
  report.SetParam("reliable", true);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"nodes\":100"), std::string::npos);
  EXPECT_NE(json.find("\"delta\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"explicit\""), std::string::npos);
  EXPECT_NE(json.find("\"reliable\":true"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

}  // namespace
}  // namespace elink
