// Bit-reproducibility regression tests for the simulator core.
//
// The golden values below were captured from the seed build (the
// std::priority_queue/std::function event queue, std::map-based stats and
// fault tables) and pin the full observable outcome of two end-to-end ELink
// runs: clustering assignment, per-category message ledger, and completion
// time.  Any event-core change that reorders same-seed dispatch, perturbs an
// RNG call sequence, or miscounts a ledger entry shows up here as a concrete
// diff, not a flaky downstream assertion.
//
// Also checks that the bench thread pool (ParallelTrialRunner) is outcome-
// transparent: trials run under it produce the same bits as serial runs.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "cluster/elink.h"
#include "common/rng.h"
#include "core/clustered_network.h"
#include "data/terrain.h"
#include "serve/session.h"
#include "serve/workload.h"

namespace elink {
namespace {

// FNV-1a over the cluster-root assignment; collapses the whole partition
// into one comparable (and greppable) number.
uint64_t HashClustering(const Clustering& c) {
  uint64_t h = 1469598103934665603ULL;
  for (int r : c.root_of) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(r));
    h *= 1099511628211ULL;
  }
  return h;
}

SensorDataset GoldenDataset() {
  TerrainConfig tcfg;
  tcfg.num_nodes = 120;
  tcfg.radio_range_fraction = 0.12;
  auto ds = MakeTerrainDataset(tcfg);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

// Captured from the seed build; FeatureDiameter is pure geometry, but a
// drift here would silently re-seed both golden runs, so it is pinned too.
constexpr double kGoldenDelta = 408.66203056546743;

TEST(DeterminismGoldenTest, FaultedReliableExplicitRunIsBitIdentical) {
  const SensorDataset ds = GoldenDataset();
  ASSERT_DOUBLE_EQ(0.3 * FeatureDiameter(ds), kGoldenDelta);

  ElinkConfig cfg;
  cfg.delta = kGoldenDelta;
  cfg.seed = 77;
  cfg.synchronous = false;
  cfg.fault.drop_probability = 0.15;
  cfg.fault.node_crashes.push_back({7, 40.0, 90.0});
  cfg.fault.link_outages.push_back({3, 11, 5.0, 50.0});
  cfg.reliable_transport = true;
  cfg.reliable.rto = 8.0;
  cfg.reliable.backoff = 1.5;
  cfg.reliable.max_retries = 8;
  cfg.completion_timeout = 450.0;
  auto res = RunElink(ds, cfg, ElinkMode::kExplicit);
  ASSERT_TRUE(res.ok());
  const ElinkResult& r = res.value();

  EXPECT_EQ(HashClustering(r.clustering), 1498488352856467774ULL);
  EXPECT_EQ(r.stats.ToString(),
            "sends=5124 units=5124 (ack1=89, ack1.ack=102, ack1.retx=32, "
            "ack2=90, ack2.ack=102, ack2.retx=34, expand=871, "
            "expand.ack=1002, expand.retx=325, nack=767, nack.ack=900, "
            "nack.retx=264, phase1=45, phase1.ack=74, phase1.retx=136, "
            "phase2=17, phase2.ack=28, phase2.retx=30, start=33, "
            "start.ack=71, start.retx=112) dropped=864/864");
  EXPECT_DOUBLE_EQ(r.completion_time, 1800.0);
  EXPECT_EQ(r.total_switches, 0);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.unclustered_nodes, 8);
}

TEST(DeterminismGoldenTest, CleanAsynchronousExplicitRunIsBitIdentical) {
  const SensorDataset ds = GoldenDataset();

  ElinkConfig cfg;
  cfg.delta = kGoldenDelta;
  cfg.seed = 77;
  cfg.synchronous = false;
  auto res = RunElink(ds, cfg, ElinkMode::kExplicit);
  ASSERT_TRUE(res.ok());
  const ElinkResult& r = res.value();

  EXPECT_EQ(HashClustering(r.clustering), 5438894716173134638ULL);
  EXPECT_EQ(r.stats.ToString(),
            "sends=3213 units=3213 (ack1=105, ack2=105, expand=1059, "
            "nack=954, phase1=495, phase2=332, start=163)");
  EXPECT_DOUBLE_EQ(r.completion_time, 153.51833153945844);
  EXPECT_EQ(r.total_switches, 0);
}

TEST(ParallelTrialRunnerTest, RunsEveryTrialExactlyOnce) {
  bench::ParallelTrialRunner runner(8);
  std::vector<int> hits(100, 0);
  runner.Run(static_cast<int>(hits.size()), [&hits](int i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);

  // Degenerate shapes: empty batch, single trial, more threads than trials.
  runner.Run(0, [](int) { FAIL() << "no trials to run"; });
  int single = 0;
  bench::ParallelTrialRunner wide(16);
  wide.Run(1, [&single](int) { ++single; });
  EXPECT_EQ(single, 1);
}

TEST(ParallelTrialRunnerTest, TrialsUnderThreadsMatchSerialBits) {
  const SensorDataset ds = GoldenDataset();
  auto run_hash = [&ds](uint64_t seed) {
    ElinkConfig cfg;
    cfg.delta = kGoldenDelta;
    cfg.seed = seed;
    cfg.synchronous = false;
    auto res = RunElink(ds, cfg, ElinkMode::kExplicit);
    EXPECT_TRUE(res.ok());
    return HashClustering(res.value().clustering);
  };

  const std::vector<uint64_t> seeds = {1, 2, 3, 77, 91, 104};
  std::vector<uint64_t> serial(seeds.size()), parallel(seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) serial[i] = run_hash(seeds[i]);
  bench::ParallelTrialRunner runner(4);
  runner.Run(static_cast<int>(seeds.size()),
             [&](int i) { parallel[i] = run_hash(seeds[i]); });
  EXPECT_EQ(parallel, serial);
}

// ---------------------------------------------------------------------------
// Serving-layer replay determinism: a single-threaded serve replay (clients
// interleaved round-robin with maintenance publishes) digests to the same
// bits on every run, with caching on or off, and whether the replay runs
// serially or inside bench worker threads.  Wall-clock latency deliberately
// never enters the digest — timing lives in bench/perf_serve.cc only.

uint64_t ServeReplayDigest(const SensorDataset& ds, uint64_t seed,
                           bool enable_cache) {
  ClusteredSensorNetwork::Options opts;
  opts.delta = kGoldenDelta;
  opts.seed = 5;
  auto net = std::move(ClusteredSensorNetwork::Build(ds, opts)).value();
  serve::ServeFrontend::Options fopt;
  fopt.enable_cache = enable_cache;
  fopt.cache.capacity_per_shard = 8;  // Evictions are part of the replay.
  serve::ServeSession session(net.get(), fopt);

  serve::WorkloadConfig wcfg;
  wcfg.num_clients = 2;
  wcfg.ops_per_client = 30;
  wcfg.predicate_pool = 10;
  serve::WorkloadGenerator gen(ds.features, ds.topology.num_nodes(), wcfg,
                               seed);
  uint64_t h = 1469598103934665603ULL;
  Rng rng(seed);
  for (int round = 0; round < 3; ++round) {
    for (int client = 0; client < wcfg.num_clients; ++client) {
      for (const serve::WorkloadOp& op : gen.ClientOps(client)) {
        if (op.is_range) {
          h = serve::DigestRange(
              h, session.frontend().Range(op.feature, op.scalar).answer);
        } else {
          h = serve::DigestPath(
              h, session.frontend()
                     .SafePath(op.source, op.destination, op.feature,
                               op.scalar)
                     .answer);
        }
      }
    }
    const int node = static_cast<int>(rng.UniformInt(120));
    Feature f = net->feature(node);
    f[0] += rng.Uniform(-5.0, 5.0);
    session.UpdateFeatureAndPublish(node, f);
  }
  return h;
}

TEST(ServeDeterminismTest, ReplayBitsMatchAcrossRunsAndCacheModes) {
  const SensorDataset ds = GoldenDataset();
  const uint64_t cached = ServeReplayDigest(ds, 17, /*enable_cache=*/true);
  const uint64_t cached_again =
      ServeReplayDigest(ds, 17, /*enable_cache=*/true);
  const uint64_t uncached = ServeReplayDigest(ds, 17, /*enable_cache=*/false);
  EXPECT_EQ(cached, cached_again);
  // Coherence in digest form: caching must never change a served answer.
  EXPECT_EQ(cached, uncached);
}

TEST(ServeDeterminismTest, ReplayBitsMatchUnderBenchThreads) {
  const SensorDataset ds = GoldenDataset();
  const std::vector<uint64_t> seeds = {5, 6, 7};
  std::vector<uint64_t> serial(seeds.size()), parallel(seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    serial[i] = ServeReplayDigest(ds, seeds[i], true);
  }
  bench::ParallelTrialRunner runner(3);
  runner.Run(static_cast<int>(seeds.size()), [&](int i) {
    parallel[i] = ServeReplayDigest(ds, seeds[i], true);
  });
  EXPECT_EQ(parallel, serial);
}

}  // namespace
}  // namespace elink
