// Lifecycle and equivalence tests for the message arena (sim/msg_arena.h).
//
// Three layers:
//  * MessageArena unit tests — refcount-driven destruction, epoch slab
//    rewind/recycle, destructor teardown of in-flight payloads.  Run under
//    ASan/LSan these double as leak proofs for every path.
//  * Network-level release tests — every way a payload can leave flight
//    (delivery, fault drop, churn drop, all-legs-dropped broadcast) must end
//    with arena().live() == 0: a send that is never delivered must still
//    free its payload.
//  * The arena-vs-heap property test — for 100 fuzzed scenarios, a full
//    ELink run on the arena fast path and on the legacy heap-closure path
//    must produce byte-identical RunReports (plus identical clusterings and
//    ledgers).  This is the strongest statement of the arena's contract:
//    not "close", the same bits.
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "check/scenario.h"
#include "cluster/elink.h"
#include "obs/run_report.h"
#include "obs/telemetry.h"
#include "sim/msg_arena.h"
#include "sim/network.h"
#include "sim/topology.h"

namespace elink {
namespace {

Message TestMessage(int type, std::vector<double> doubles = {}) {
  Message m;
  m.type = type;
  m.category = "test";
  m.doubles = std::move(doubles);
  return m;
}

// -- MessageArena unit tests --------------------------------------------------

TEST(MessageArenaTest, CreateReleaseLifecycle) {
  MessageArena arena;
  EXPECT_EQ(arena.live(), 0u);
  EXPECT_EQ(arena.slabs_allocated(), 0u);

  MessageArena::Slot* slot = arena.Create(TestMessage(7, {1.0, 2.5}));
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(arena.live(), 1u);
  EXPECT_EQ(arena.slabs_allocated(), 1u);
  EXPECT_EQ(slot->refs, 1u);
  EXPECT_EQ(slot->msg.type, 7);
  EXPECT_EQ(slot->msg.category, "test");
  ASSERT_EQ(slot->msg.doubles.size(), 2u);
  EXPECT_DOUBLE_EQ(slot->msg.doubles[1], 2.5);

  // One extra ref per additionally scheduled delivery; the payload survives
  // until the last release.
  MessageArena::AddRef(slot);
  EXPECT_EQ(slot->refs, 2u);
  arena.Release(slot);
  EXPECT_EQ(arena.live(), 1u);
  arena.Release(slot);
  EXPECT_EQ(arena.live(), 0u);

  // The (active) slab rewound: the next payload reuses it, no new slab.
  arena.Create(TestMessage(8));
  EXPECT_EQ(arena.slabs_allocated(), 1u);
}

TEST(MessageArenaTest, SlabGrowthAndWholesaleRecycle) {
  constexpr size_t kN = MessageArena::kSlotsPerSlab;
  MessageArena arena;

  // Fill slab 0 completely, then overflow into slab 1.
  std::vector<MessageArena::Slot*> first(kN);
  for (size_t i = 0; i < kN; ++i) {
    first[i] = arena.Create(TestMessage(static_cast<int>(i)));
  }
  EXPECT_EQ(arena.slabs_allocated(), 1u);
  MessageArena::Slot* overflow = arena.Create(TestMessage(-1));
  EXPECT_EQ(arena.slabs_allocated(), 2u);
  EXPECT_EQ(arena.live(), kN + 1);

  // Payloads survive slab growth untouched (out-of-order spot check).
  EXPECT_EQ(first[3]->msg.type, 3);
  EXPECT_EQ(first[kN - 1]->msg.type, static_cast<int>(kN - 1));

  // Drain slab 0 out of order: it rewinds wholesale only when the *last*
  // live payload goes, then waits as a drained slab.
  for (size_t i = kN; i-- > 1;) arena.Release(first[i]);
  EXPECT_EQ(arena.live(), 2u);
  arena.Release(first[0]);
  EXPECT_EQ(arena.live(), 1u);
  EXPECT_EQ(arena.slab_recycles(), 0u);

  // Fill slab 1 to capacity; the next Create must recycle drained slab 0
  // instead of allocating slab 2.
  std::vector<MessageArena::Slot*> second;
  for (size_t i = 1; i < kN; ++i) second.push_back(arena.Create(TestMessage(0)));
  EXPECT_EQ(arena.slabs_allocated(), 2u);
  MessageArena::Slot* recycled = arena.Create(TestMessage(42));
  EXPECT_EQ(arena.slabs_allocated(), 2u);
  EXPECT_EQ(arena.slab_recycles(), 1u);
  EXPECT_EQ(recycled->msg.type, 42);

  arena.Release(recycled);
  arena.Release(overflow);
  for (MessageArena::Slot* s : second) arena.Release(s);
  EXPECT_EQ(arena.live(), 0u);
}

TEST(MessageArenaTest, SteadyChurnNeverGrowsPastHighWaterMark) {
  // A long run with bounded in-flight population must not keep allocating:
  // slabs recycle through the drained list, the heap is touched only while
  // the high-water mark grows.
  MessageArena arena;
  std::vector<MessageArena::Slot*> window;
  for (int i = 0; i < 20000; ++i) {
    window.push_back(arena.Create(TestMessage(i, {1.0})));
    if (window.size() > 300) {
      arena.Release(window.front());
      window.erase(window.begin());
    }
  }
  // 300 in flight needs ceil(300/256) + 1 slabs at most (the +1 because a
  // slab only rewinds when fully drained, so two partial slabs can coexist
  // with the active one).
  EXPECT_LE(arena.slabs_allocated(), 3u);
  EXPECT_GT(arena.slab_recycles(), 0u);
  for (MessageArena::Slot* s : window) arena.Release(s);
  EXPECT_EQ(arena.live(), 0u);
}

TEST(MessageArenaTest, DestructorTearsDownInFlightPayloads) {
  // Payloads scheduled but never dispatched (a queue torn down mid-run) are
  // destroyed by ~MessageArena.  Under ASan/LSan this test fails if any
  // Message (or its heap-owned vectors) leaks.
  MessageArena arena;
  for (int i = 0; i < 10; ++i) {
    MessageArena::Slot* s =
        arena.Create(TestMessage(i, {1.0, 2.0, 3.0, 4.0}));
    if (i % 2 == 0) MessageArena::AddRef(s);  // Still live either way.
    if (i == 3) arena.Release(s), arena.Release(s);  // This one fully dies.
  }
  EXPECT_EQ(arena.live(), 9u);
  // ~MessageArena runs here and must destroy exactly the 9 live payloads.
}

// -- Network-level release tests ----------------------------------------------

class SinkNode : public Node {
 public:
  void HandleMessage(int from, const Message& msg) override {
    (void)from;
    ++received;
    payload_doubles += msg.doubles.size();
  }
  int received = 0;
  size_t payload_doubles = 0;
};

TEST(NetworkArenaTest, DeliveredPayloadsAreReleased) {
  Network::Config cfg;
  cfg.seed = 11;
  Network net(MakeGridTopology(3, 3), cfg);
  net.InstallNodes([](int) { return std::make_unique<SinkNode>(); });

  net.Send(0, 1, TestMessage(1, {1.0, 2.0}));
  net.Broadcast(4, TestMessage(2, {3.0}));  // Center node: 4 neighbors.
  net.SendRouted(0, 8, TestMessage(3));     // Multi-hop relay.
  net.SendRouted(2, 2, TestMessage(4));     // Self-delivery.
  net.Run();

  EXPECT_EQ(net.arena().live(), 0u);
  int total = 0;
  for (int i = 0; i < net.num_nodes(); ++i) {
    total += static_cast<SinkNode*>(net.node(i))->received;
  }
  EXPECT_EQ(total, 1 + 4 + 1 + 1);
}

TEST(NetworkArenaTest, FaultDroppedSendsReleasePayloads) {
  Network::Config cfg;
  cfg.seed = 12;
  cfg.fault.drop_probability = 1.0;  // Every transmission is lost.
  Network net(MakeGridTopology(3, 3), cfg);
  net.InstallNodes([](int) { return std::make_unique<SinkNode>(); });

  for (int i = 0; i < 20; ++i) net.Send(0, 1, TestMessage(i, {1.0, 2.0}));
  // All-legs-dropped broadcast: the shared payload's only remaining ref is
  // the creator's, released at the end of the fan-out loop.
  net.Broadcast(4, TestMessage(99, {5.0, 6.0, 7.0}));
  net.Run();

  EXPECT_EQ(net.arena().live(), 0u);
  EXPECT_GT(net.stats().dropped_sends(), 0u);
  for (int i = 0; i < net.num_nodes(); ++i) {
    EXPECT_EQ(static_cast<SinkNode*>(net.node(i))->received, 0);
  }
}

TEST(NetworkArenaTest, PartiallyDroppedBroadcastReleasesOnLastDelivery) {
  Network::Config cfg;
  cfg.seed = 13;
  cfg.fault.drop_probability = 0.5;
  Network net(MakeGridTopology(4, 4), cfg);
  net.InstallNodes([](int) { return std::make_unique<SinkNode>(); });

  for (int round = 0; round < 30; ++round) {
    for (int from = 0; from < net.num_nodes(); ++from) {
      net.Broadcast(from, TestMessage(round, {1.0, 2.0}));
    }
  }
  net.Run();
  // Some legs delivered, some dropped; either way every payload is dead.
  EXPECT_EQ(net.arena().live(), 0u);
  EXPECT_GT(net.stats().dropped_sends(), 0u);
}

TEST(NetworkArenaTest, ChurnAbsentEndpointDropsReleasePayloads) {
  Network::Config cfg;
  cfg.seed = 14;
  // Node 4 (grid center) is absent until t = 100: every leg to it before
  // then is a churn drop, taken before any arena ref is added.
  cfg.churn.joins.push_back({4, 100.0});
  Network net(MakeGridTopology(3, 3), cfg);
  net.InstallNodes([](int) { return std::make_unique<SinkNode>(); });

  net.Broadcast(1, TestMessage(1, {1.0}));  // One leg aimed at absent 4.
  net.Send(3, 4, TestMessage(2, {2.0}));    // Unicast into the void.
  net.Run();

  EXPECT_EQ(net.arena().live(), 0u);
  EXPECT_GE(net.churn_drops(), 2u);
  EXPECT_EQ(static_cast<SinkNode*>(net.node(4))->received, 0);
}

TEST(NetworkArenaTest, TeardownWithQueuedDeliveriesDoesNotLeak) {
  // Destroy the network with deliveries still scheduled: the arena's
  // destructor must reap the in-flight payloads (LSan-visible otherwise).
  Network::Config cfg;
  cfg.seed = 15;
  Network net(MakeGridTopology(3, 3), cfg);
  net.InstallNodes([](int) { return std::make_unique<SinkNode>(); });
  for (int i = 0; i < 50; ++i) net.Send(0, 1, TestMessage(i, {1.0, 2.0}));
  net.Broadcast(4, TestMessage(99, {3.0}));
  EXPECT_GT(net.arena().live(), 0u);
  // ~Network (and ~MessageArena) run here with every payload undelivered.
}

// -- Arena vs heap equivalence ------------------------------------------------

/// Flips the process-wide arena default for one scope.
class ScopedArenaDefault {
 public:
  explicit ScopedArenaDefault(bool v)
      : saved_(Network::default_arena_messages()) {
    Network::set_default_arena_messages(v);
  }
  ~ScopedArenaDefault() { Network::set_default_arena_messages(saved_); }

 private:
  bool saved_;
};

// FNV-1a over the cluster-root assignment (same fold as determinism_test).
uint64_t HashClustering(const Clustering& c) {
  uint64_t h = 1469598103934665603ULL;
  for (int r : c.root_of) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(r));
    h *= 1099511628211ULL;
  }
  return h;
}

struct RunFingerprint {
  std::string report_json;
  std::string stats;
  uint64_t clustering_hash = 0;
  double completion_time = 0.0;
  bool ok = false;
};

/// One full ELink run over the fuzzed scenario, fingerprinted via the same
/// RunTelemetry -> RunReport pipeline the observability layer serializes.
RunFingerprint RunScenarioOnce(const check::Scenario& s) {
  obs::RunTelemetry tele;
  ElinkConfig cfg;
  cfg.delta = s.delta;
  cfg.slack = s.slack;
  cfg.synchronous = s.synchronous;
  cfg.seed = s.seed;
  cfg.fault = s.fault;
  cfg.observer = &tele;
  if (s.fault.enabled()) {  // Mirrors the fuzzer's TuneElinkForFaults.
    if (s.reliable) {
      cfg.reliable_transport = true;
      cfg.reliable.rto = 8.0;
      cfg.reliable.backoff = 1.5;
      cfg.reliable.max_retries = 8;
    }
    cfg.completion_timeout = 450.0;
  }

  RunFingerprint fp;
  Result<ElinkResult> r =
      RunElink(s.topology, s.features, *s.metric, cfg, s.elink_mode);
  if (!r.ok()) return fp;
  const ElinkResult& res = r.value();
  fp.ok = true;
  fp.report_json = tele.MakeReport("elink", s.seed, res.stats).ToJson();
  fp.stats = res.stats.ToString();
  fp.clustering_hash = HashClustering(res.clustering);
  fp.completion_time = res.completion_time;
  return fp;
}

TEST(ArenaHeapEquivalenceTest, FuzzedScenariosProduceByteIdenticalRunReports) {
  // The property the whole overhaul rests on: for any scenario the fuzzer
  // can generate, running on the arena fast path and on the legacy
  // heap-closure path yields the same bytes in every observable — the
  // serialized RunReport (every counter, histogram bucket, and outcome
  // field), the message ledger, the clustering, the completion time.
  int compared = 0;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    Result<check::Scenario> s = check::MakeScenario(seed);
    ASSERT_TRUE(s.ok()) << "seed " << seed;

    RunFingerprint arena_fp, heap_fp;
    {
      ScopedArenaDefault on(true);
      arena_fp = RunScenarioOnce(s.value());
    }
    {
      ScopedArenaDefault off(false);
      heap_fp = RunScenarioOnce(s.value());
    }
    ASSERT_EQ(arena_fp.ok, heap_fp.ok) << "seed " << seed;
    if (!arena_fp.ok) continue;  // Both failed identically; nothing to diff.
    ++compared;
    EXPECT_EQ(arena_fp.clustering_hash, heap_fp.clustering_hash)
        << "seed " << seed;
    EXPECT_EQ(arena_fp.stats, heap_fp.stats) << "seed " << seed;
    EXPECT_DOUBLE_EQ(arena_fp.completion_time, heap_fp.completion_time)
        << "seed " << seed;
    EXPECT_EQ(arena_fp.report_json, heap_fp.report_json) << "seed " << seed;
  }
  // The property is vacuous if RunElink failed everywhere.
  EXPECT_GE(compared, 90);
}

}  // namespace
}  // namespace elink
