// Unit tests for the serving layer (src/serve): canonical cache keys, the
// epoch-keyed result cache, read-view snapshotting, publish-time epoch
// diffing, workload determinism, and the facade-backed serving session.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "check/scenario.h"
#include "common/rng.h"
#include "core/clustered_network.h"
#include "data/terrain.h"
#include "metric/distance.h"
#include "serve/frontend.h"
#include "serve/read_view.h"
#include "serve/result_cache.h"
#include "serve/session.h"
#include "serve/workload.h"

namespace elink {
namespace serve {
namespace {

// -- Canonical keys ---------------------------------------------------------

TEST(CanonicalKeyTest, EqualPredicatesShareKeys) {
  EXPECT_EQ(CanonicalRangeKey({1.0, 2.0}, 0.5),
            CanonicalRangeKey({1.0, 2.0}, 0.5));
  EXPECT_NE(CanonicalRangeKey({1.0, 2.0}, 0.5),
            CanonicalRangeKey({1.0, 2.0}, 0.6));
  EXPECT_NE(CanonicalRangeKey({1.0, 2.0}, 0.5),
            CanonicalRangeKey({2.0, 1.0}, 0.5));
  // -0.0 and +0.0 are the same predicate.
  EXPECT_EQ(CanonicalRangeKey({-0.0, 2.0}, 0.5),
            CanonicalRangeKey({0.0, 2.0}, 0.5));
  // Range and path keys never collide (distinct kind tags).
  EXPECT_NE(CanonicalRangeKey({1.0}, 2.0),
            CanonicalPathKey(0, 0, {1.0}, 2.0));
  EXPECT_NE(CanonicalPathKey(1, 2, {1.0}, 0.5),
            CanonicalPathKey(2, 1, {1.0}, 0.5));
}

// -- Epoch signatures -------------------------------------------------------

TEST(EpochSignatureTest, DistinguishesVectors) {
  const EpochVector a = {{0, 1}, {5, 2}};
  const EpochVector b = {{0, 1}, {5, 3}};
  const EpochVector c = {{0, 1}, {6, 2}};
  EXPECT_EQ(EpochSignature(a), EpochSignature(a));
  EXPECT_NE(EpochSignature(a), EpochSignature(b));
  EXPECT_NE(EpochSignature(a), EpochSignature(c));
  EXPECT_NE(EpochSignature({}), EpochSignature(a));
}

// -- Result cache -----------------------------------------------------------

CacheEntry RangeEntry(uint64_t signature, std::vector<int> matches) {
  CacheEntry e;
  e.is_range = true;
  e.range.matches = std::move(matches);
  e.signature = signature;
  return e;
}

TEST(ResultCacheTest, HitMissAndStaleEviction) {
  ResultCache cache;
  EXPECT_FALSE(cache.Lookup("k", 1).has_value());
  cache.Insert("k", RangeEntry(1, {1, 2, 3}));
  auto hit = cache.Lookup("k", 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->range.matches, (std::vector<int>{1, 2, 3}));
  // Same key, newer epoch signature: the stale entry must be evicted, not
  // served.
  EXPECT_FALSE(cache.Lookup("k", 2).has_value());
  EXPECT_EQ(cache.Size(), 0u);
  const CacheCounters c = cache.Counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 2u);
  EXPECT_EQ(c.stale_evictions, 1u);
}

TEST(ResultCacheTest, InvalidateStaleSweepsOldSignatures) {
  ResultCache cache;
  cache.Insert("a", RangeEntry(1, {}));
  cache.Insert("b", RangeEntry(1, {}));
  cache.Insert("c", RangeEntry(2, {}));
  EXPECT_EQ(cache.InvalidateStale(2), 2u);
  EXPECT_EQ(cache.Size(), 1u);
  EXPECT_TRUE(cache.Lookup("c", 2).has_value());
}

TEST(ResultCacheTest, CapacityEvictionKeepsReferencedEntries) {
  ResultCache::Options opt;
  opt.shards = 1;
  opt.capacity_per_shard = 2;
  ResultCache cache(opt);
  cache.Insert("a", RangeEntry(1, {}));
  cache.Insert("b", RangeEntry(1, {}));
  // Touch "a" so it has a second chance; inserting "c" must evict "b".
  EXPECT_TRUE(cache.Lookup("a", 1).has_value());
  cache.Insert("c", RangeEntry(1, {}));
  EXPECT_EQ(cache.Size(), 2u);
  EXPECT_TRUE(cache.Lookup("a", 1).has_value());
  EXPECT_FALSE(cache.Lookup("b", 1).has_value());
  EXPECT_TRUE(cache.Lookup("c", 1).has_value());
  EXPECT_EQ(cache.Counters().capacity_evictions, 1u);
}

// -- Read view --------------------------------------------------------------

SensorDataset SmallDs() {
  TerrainConfig cfg;
  cfg.num_nodes = 60;
  cfg.radio_range_fraction = 0.18;
  cfg.seed = 9;
  return std::move(MakeTerrainDataset(cfg)).value();
}

std::unique_ptr<ClusteredSensorNetwork> SmallNet(const SensorDataset& ds) {
  ClusteredSensorNetwork::Options opts;
  opts.delta = 0.3 * FeatureDiameter(ds);
  opts.seed = 5;
  return std::move(ClusteredSensorNetwork::Build(ds, opts)).value();
}

TEST(ReadViewTest, FullViewMatchesEngineAnswers) {
  const SensorDataset ds = SmallDs();
  auto net = SmallNet(ds);
  auto view = ReadView::Build(ds.topology.adjacency, ds.features,
                              net->clustering(), /*live=*/{}, ds.metric,
                              net->delta(), {{0, 0}}, 1);
  EXPECT_TRUE(view->engine_backed());
  EXPECT_EQ(view->num_live(), 60);
  Rng rng(3);
  for (int t = 0; t < 10; ++t) {
    const Feature q = {rng.Uniform(175.0, 1996.0)};
    const double r = rng.Uniform(0.2, 1.0) * net->delta();
    std::vector<int> expected;
    for (int i = 0; i < 60; ++i) {
      if (ds.metric->Distance(ds.features[i], q) <= r) expected.push_back(i);
    }
    EXPECT_EQ(view->Range(q, r).matches, expected) << "trial " << t;
  }
}

TEST(ReadViewTest, ChurnedViewCompactsAndMapsBack) {
  const SensorDataset ds = SmallDs();
  auto net = SmallNet(ds);
  // Kill a handful of non-root nodes; roots stay live so the clustering
  // remains valid on the live subgraph.
  std::vector<char> live(60, 1);
  const Clustering& c = net->clustering();
  int killed = 0;
  for (int i = 0; i < 60 && killed < 5; ++i) {
    if (c.root_of[i] != i) {
      live[i] = 0;
      ++killed;
    }
  }
  ASSERT_EQ(killed, 5);
  auto view = ReadView::Build(ds.topology.adjacency, ds.features, c, live,
                              ds.metric, net->delta(), {{0, 0}}, 1);
  EXPECT_EQ(view->num_live(), 55);
  // Dead nodes never appear in answers; live answers are in original ids.
  const Feature q = ds.features[0];
  const RangeAnswer ans = view->Range(q, 4.0 * net->delta());
  for (int id : ans.matches) {
    EXPECT_TRUE(live[id]) << "absent node " << id << " served";
  }
  std::vector<int> expected;
  for (int i = 0; i < 60; ++i) {
    if (live[i] && ds.metric->Distance(ds.features[i], q) <=
                       4.0 * net->delta()) {
      expected.push_back(i);
    }
  }
  EXPECT_EQ(ans.matches, expected);
  // Paths touching a dead endpoint are not found.
  int dead = 0;
  while (live[dead]) ++dead;
  EXPECT_FALSE(view->SafePath(dead, 0, q, 0.0).found);
}

TEST(ReadViewTest, MidChurnOrphanRootServesExactFallback) {
  // Pinned finding from the serve_parity_test sweep (scenario seed 1): a
  // mid-churn CurrentClustering() snapshot can contain a live node whose
  // root has crashed — the repair protocol simply has not reached it yet.
  // ReadView::Build used to ELINK_CHECK-crash on the dangling root; it must
  // instead demote the view to the exact fallbacks and keep serving.
  const SensorDataset ds = SmallDs();
  auto net = SmallNet(ds);
  Clustering c = net->clustering();
  // Kill one root while its members still point at it.
  int dead_root = -1;
  for (int i = 0; i < 60; ++i) {
    if (c.root_of[i] == i) {
      for (int j = 0; j < 60; ++j) {
        if (j != i && c.root_of[j] == i) {
          dead_root = i;
          break;
        }
      }
    }
    if (dead_root >= 0) break;
  }
  ASSERT_GE(dead_root, 0) << "dataset produced only singleton clusters";
  std::vector<char> live(60, 1);
  live[dead_root] = 0;
  auto view = ReadView::Build(ds.topology.adjacency, ds.features, c, live,
                              ds.metric, net->delta(), {{0, 7}}, 3);
  ASSERT_EQ(view->num_live(), 59);
  EXPECT_FALSE(view->engine_backed());  // Demoted, not crashed.
  // Fallback answers are still exact against the linear oracle.
  const Feature q = ds.features[dead_root];
  const double r = 3.0 * net->delta();
  std::vector<int> expected;
  for (int i = 0; i < 60; ++i) {
    if (live[i] && ds.metric->Distance(ds.features[i], q) <= r) {
      expected.push_back(i);
    }
  }
  EXPECT_EQ(view->Range(q, r).matches, expected);
}

// -- Frontend epoch bookkeeping ---------------------------------------------

TEST(ServeFrontendTest, RepublishingUnchangedStateKeepsSignatureAndCache) {
  const SensorDataset ds = SmallDs();
  auto net = SmallNet(ds);
  ServeSession session(net.get(), {});
  const uint64_t sig0 = session.frontend().View()->epoch_signature();
  const ServedRange first = session.frontend().Range(ds.features[0], 10.0);
  EXPECT_FALSE(first.from_cache);
  session.Publish();  // Nothing changed.
  EXPECT_EQ(session.frontend().View()->epoch_signature(), sig0);
  const ServedRange again = session.frontend().Range(ds.features[0], 10.0);
  EXPECT_TRUE(again.from_cache);
  EXPECT_TRUE(again.answer == first.answer);
}

TEST(ServeFrontendTest, FeatureChangeBumpsOnlyTouchedClusters) {
  const SensorDataset ds = SmallDs();
  auto net = SmallNet(ds);
  ServeSession session(net.get(), {});
  const EpochVector before = session.frontend().View()->epochs();

  // Nudge one node's feature without re-clustering it.
  Feature f = net->feature(7);
  f[0] += 1e-6;
  session.UpdateFeatureAndPublish(7, f);

  const EpochVector after = session.frontend().View()->epochs();
  ASSERT_EQ(before.size(), after.size());
  const int touched_root = net->clustering().root_of[7];
  int bumped = 0;
  for (size_t k = 0; k < after.size(); ++k) {
    EXPECT_EQ(before[k].first, after[k].first);
    if (after[k].second != before[k].second) {
      ++bumped;
      EXPECT_EQ(after[k].first, touched_root);
    }
  }
  EXPECT_EQ(bumped, 1);
  // The cached answer from the old signature can no longer be served.
  EXPECT_NE(session.frontend().View()->epoch_signature(),
            EpochSignature(before));
}

TEST(ServeFrontendTest, CacheDisabledStillAnswersCorrectly) {
  const SensorDataset ds = SmallDs();
  auto net = SmallNet(ds);
  ServeFrontend::Options opt;
  opt.enable_cache = false;
  ServeSession session(net.get(), opt);
  const ServedRange a = session.frontend().Range(ds.features[3], 25.0);
  const ServedRange b = session.frontend().Range(ds.features[3], 25.0);
  EXPECT_FALSE(a.from_cache);
  EXPECT_FALSE(b.from_cache);
  EXPECT_TRUE(a.answer == b.answer);
  EXPECT_EQ(session.frontend().Counters().cache.hits, 0u);
}

// -- Workload ---------------------------------------------------------------

TEST(WorkloadTest, ClientStreamsAreDeterministicAndSkewed) {
  const SensorDataset ds = SmallDs();
  WorkloadConfig cfg;
  cfg.num_clients = 3;
  cfg.ops_per_client = 200;
  cfg.predicate_pool = 8;
  cfg.unique_fraction = 0.0;
  WorkloadGenerator gen(ds.features, 60, cfg, /*seed=*/42);
  WorkloadGenerator gen2(ds.features, 60, cfg, /*seed=*/42);

  std::set<std::string> distinct;
  for (int c = 0; c < cfg.num_clients; ++c) {
    const auto ops = gen.ClientOps(c);
    const auto ops2 = gen2.ClientOps(c);
    ASSERT_EQ(ops.size(), ops2.size());
    for (size_t k = 0; k < ops.size(); ++k) {
      EXPECT_EQ(ops[k].is_range, ops2[k].is_range);
      EXPECT_EQ(ops[k].feature, ops2[k].feature);
      EXPECT_EQ(ops[k].scalar, ops2[k].scalar);
      distinct.insert(ops[k].is_range
                          ? CanonicalRangeKey(ops[k].feature, ops[k].scalar)
                          : CanonicalPathKey(ops[k].source,
                                             ops[k].destination,
                                             ops[k].feature, ops[k].scalar));
    }
  }
  // 600 pool-only ops over 8 predicates: repetition (the cache's food) is
  // guaranteed.
  EXPECT_LE(distinct.size(), 8u);
  // Arrival schedules are deterministic and strictly increasing.
  const auto arr = gen.ArrivalOffsets(1);
  EXPECT_EQ(arr, gen2.ArrivalOffsets(1));
  for (size_t k = 1; k < arr.size(); ++k) EXPECT_GT(arr[k], arr[k - 1]);
}

// -- Scenario knob ----------------------------------------------------------

TEST(ServeScenarioTest, DisableListRoundTripsAndPinsServe) {
  auto knobs = check::ScenarioKnobs::FromDisableList("serve");
  ASSERT_TRUE(knobs.ok());
  EXPECT_FALSE(knobs.value().serve);
  EXPECT_EQ(knobs.value().DisableList(), "serve");
  auto s = check::MakeScenario(1234, knobs.value());
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s.value().serve_enabled);
  // The knob must not reshuffle any other aspect (knob-stable streams).
  auto full = check::MakeScenario(1234, check::ScenarioKnobs{});
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().delta, s.value().delta);
  EXPECT_EQ(full.value().num_updates, s.value().num_updates);
  EXPECT_EQ(full.value().features, s.value().features);
}

}  // namespace
}  // namespace serve
}  // namespace elink
