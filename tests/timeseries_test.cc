// Tests for src/timeseries: AR fitting, the Appendix-A RLS update, and the
// seasonal Tao model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "linalg/solve.h"
#include "timeseries/ar_model.h"
#include "timeseries/order_selection.h"
#include "timeseries/rls.h"
#include "timeseries/seasonal.h"

namespace elink {
namespace {

Vector SimulateAr(const Vector& coeffs, int length, double noise_sigma,
                  Rng* rng) {
  const int k = static_cast<int>(coeffs.size());
  Vector series(length, 0.0);
  for (int t = 0; t < length; ++t) {
    double x = rng->Normal(0.0, noise_sigma);
    for (int j = 0; j < k; ++j) {
      if (t - 1 - j >= 0) x += coeffs[j] * series[t - 1 - j];
    }
    series[t] = x;
  }
  return series;
}

TEST(ArModelTest, RecoversCoefficientsOfNoiselessProcess) {
  // Deterministic AR(2) (after a noise-driven warmup) is fit exactly.
  Rng rng(3);
  Vector series = SimulateAr({0.5, 0.3}, 50, 1.0, &rng);
  // Continue deterministically so the regression is exactly consistent.
  // (Kept short: with coefficient sum < 1 the deterministic tail decays, and
  // a long tail would underflow into ill-conditioning.)
  for (int t = 0; t < 40; ++t) {
    const size_t n = series.size();
    series.push_back(0.5 * series[n - 1] + 0.3 * series[n - 2]);
  }
  // Fit only on the deterministic tail.
  Vector tail(series.end() - 40, series.end());
  Result<ArModel> fit = FitAr(tail, 2);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().coefficients[0], 0.5, 1e-6);
  EXPECT_NEAR(fit.value().coefficients[1], 0.3, 1e-6);
  EXPECT_NEAR(fit.value().noise_variance, 0.0, 1e-9);
}

TEST(ArModelTest, RecoversCoefficientsUnderNoise) {
  Rng rng(7);
  Vector series = SimulateAr({0.6, 0.2}, 20000, 0.5, &rng);
  Result<ArModel> fit = FitAr(series, 2);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().coefficients[0], 0.6, 0.03);
  EXPECT_NEAR(fit.value().coefficients[1], 0.2, 0.03);
  EXPECT_NEAR(fit.value().noise_variance, 0.25, 0.02);
}

TEST(ArModelTest, PredictUsesCoefficients) {
  ArModel m;
  m.coefficients = {0.5, 0.25};
  EXPECT_DOUBLE_EQ(m.Predict({2.0, 4.0}), 2.0);
  EXPECT_EQ(m.order(), 2);
}

TEST(ArModelTest, RejectsShortSeries) {
  EXPECT_FALSE(FitAr({1.0, 2.0, 3.0}, 2).ok());
  EXPECT_FALSE(FitAr({1.0, 2.0, 3.0, 4.0}, 0).ok());
}

TEST(ArModelTest, BuildLagRegressionShape) {
  Matrix x;
  Vector y;
  ASSERT_TRUE(BuildLagRegression({1, 2, 3, 4, 5}, 2, &x, &y).ok());
  ASSERT_EQ(x.rows(), 2u);
  ASSERT_EQ(x.cols(), 3u);
  ASSERT_EQ(y.size(), 3u);
  // y[0] = series[2] = 3, regressors (series[1], series[0]) = (2, 1).
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(x(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(x(1, 0), 1.0);
}

// -- RLS (Appendix A) --------------------------------------------------------

TEST(RlsTest, MatchesBatchSolutionAfterWarmStart) {
  // Property (Appendix A): warm-starting from a batch fit over m points and
  // observing t more reproduces the batch fit over all m + t points.
  Rng rng(11);
  const int k = 3, m = 40, extra = 25;
  Matrix x_all(k, m + extra);
  Vector y_all(m + extra);
  for (int t = 0; t < m + extra; ++t) {
    for (int j = 0; j < k; ++j) x_all(j, t) = rng.Uniform(-1, 1);
    y_all[t] = 1.5 * x_all(0, t) - 0.7 * x_all(1, t) + 0.2 * x_all(2, t) +
               rng.Normal(0, 0.1);
  }
  Matrix x_head(k, m);
  Vector y_head(m);
  for (int t = 0; t < m; ++t) {
    for (int j = 0; j < k; ++j) x_head(j, t) = x_all(j, t);
    y_head[t] = y_all[t];
  }
  Result<RlsEstimator> est = RlsEstimator::FromBatch(x_head, y_head);
  ASSERT_TRUE(est.ok());
  for (int t = m; t < m + extra; ++t) {
    Vector xt(k);
    for (int j = 0; j < k; ++j) xt[j] = x_all(j, t);
    est.value().Observe(xt, y_all[t]);
  }
  Result<Vector> batch = SolveNormalEquations(x_all, y_all);
  ASSERT_TRUE(batch.ok());
  for (int j = 0; j < k; ++j) {
    EXPECT_NEAR(est.value().coefficients()[j], batch.value()[j], 1e-8);
  }
  EXPECT_EQ(est.value().observation_count(), m + extra);
}

TEST(RlsTest, ColdStartConvergesToBatch) {
  Rng rng(13);
  const int k = 2, m = 500;
  RlsEstimator est(k, 1e8);
  Matrix x(k, m);
  Vector y(m);
  for (int t = 0; t < m; ++t) {
    Vector xt = {rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
    const double yt = 0.9 * xt[0] + 0.4 * xt[1] + rng.Normal(0, 0.05);
    x(0, t) = xt[0];
    x(1, t) = xt[1];
    y[t] = yt;
    est.Observe(xt, yt);
  }
  Result<Vector> batch = SolveNormalEquations(x, y);
  ASSERT_TRUE(batch.ok());
  EXPECT_NEAR(est.coefficients()[0], batch.value()[0], 1e-5);
  EXPECT_NEAR(est.coefficients()[1], batch.value()[1], 1e-5);
}

TEST(RlsTest, PMatrixStaysSymmetric) {
  Rng rng(17);
  RlsEstimator est(3);
  for (int t = 0; t < 100; ++t) {
    est.Observe({rng.Uniform(-1, 1), rng.Uniform(-1, 1), rng.Uniform(-1, 1)},
                rng.Uniform(-1, 1));
  }
  EXPECT_TRUE(est.p().IsSymmetric(1e-6));
}

TEST(RlsTest, FromBatchRejectsSingular) {
  // Two identical regressor rows: X X^T singular.
  Matrix x = Matrix::FromRows({{1, 2, 3}, {1, 2, 3}});
  EXPECT_FALSE(RlsEstimator::FromBatch(x, {1, 2, 3}).ok());
}

// -- Seasonal Tao model ------------------------------------------------------

TEST(SeasonalTest, TrainRequiresFiveDays) {
  Vector short_history(4 * 10, 20.0);
  EXPECT_FALSE(SeasonalArModel::Train(short_history, 10).ok());
}

TEST(SeasonalTest, FeatureHasFourCoefficients) {
  Vector history(6 * 12, 0.0);
  Rng rng(19);
  for (auto& v : history) v = 20.0 + rng.Normal(0, 0.1);
  Result<SeasonalArModel> m = SeasonalArModel::Train(history, 12);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().Feature().size(), 4u);
  EXPECT_EQ(m.value().completed_days(), 6);
}

TEST(SeasonalTest, RecoversIntraDayPersistence) {
  // Generate a process with known AR(1) persistence around a constant mean.
  Rng rng(23);
  const int per_day = 48, days = 40;
  const double a1 = 0.65;
  Vector history;
  double fluct = 0.0;
  for (int d = 0; d < days; ++d) {
    for (int t = 0; t < per_day; ++t) {
      fluct = a1 * fluct + rng.Normal(0, 0.1);
      history.push_back(fluct);
    }
  }
  Result<SeasonalArModel> m = SeasonalArModel::Train(history, per_day);
  ASSERT_TRUE(m.ok());
  // Feature[0] is the intra-day AR(1) coefficient.
  EXPECT_NEAR(m.value().Feature()[0], a1, 0.07);
}

TEST(SeasonalTest, RecoversDailyMeanDynamics) {
  // Daily means follow mu_T = 0.8 mu_{T-1}; within-day values sit exactly at
  // the mean, so the daily regression sees a noiseless AR(1) in the means and
  // must put its weight on b1.
  const int per_day = 24, days = 60;
  Vector history;
  double mu = 4.0;
  for (int d = 0; d < days; ++d) {
    for (int t = 0; t < per_day; ++t) history.push_back(mu);
    mu = 0.8 * mu;
  }
  Result<SeasonalArModel> m = SeasonalArModel::Train(history, per_day);
  ASSERT_TRUE(m.ok());
  const Vector f = m.value().Feature();
  // Predicted mean from the three lags should reproduce the AR(1) decay:
  // b1 * mu + b2 * mu/0.8 + b3 * mu/0.64 = 0.8 mu.
  const double combo = f[1] + f[2] / 0.8 + f[3] / 0.64;
  EXPECT_NEAR(combo, 0.8, 1e-6);
}

TEST(SeasonalTest, StreamingMatchesTrainOnSameData) {
  Rng rng(29);
  const int per_day = 24;
  Vector history;
  for (int i = 0; i < per_day * 10; ++i) {
    history.push_back(25.0 + rng.Normal(0, 0.3));
  }
  Result<SeasonalArModel> trained = SeasonalArModel::Train(history, per_day);
  ASSERT_TRUE(trained.ok());
  SeasonalArModel streamed(per_day);
  for (double x : history) streamed.Observe(x);
  const Vector a = trained.value().Feature();
  const Vector b = streamed.Feature();
  for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(a[j], b[j]);
}


// -- Order selection (AIC) -----------------------------------------------------

TEST(OrderSelectionTest, PicksTrueOrderOfAr2Process) {
  Rng rng(101);
  Vector series = SimulateAr({0.6, 0.25}, 8000, 0.4, &rng);
  Result<OrderSelection> sel = SelectArOrder(series, 6);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.value().order, 2);
  EXPECT_NEAR(sel.value().model.coefficients[0], 0.6, 0.05);
  EXPECT_NEAR(sel.value().model.coefficients[1], 0.25, 0.05);
  EXPECT_EQ(sel.value().candidate_aic.size(), 6u);
}

TEST(OrderSelectionTest, WhiteNoisePrefersSmallOrder) {
  Rng rng(103);
  Vector series;
  for (int t = 0; t < 4000; ++t) series.push_back(rng.Normal());
  Result<OrderSelection> sel = SelectArOrder(series, 5);
  ASSERT_TRUE(sel.ok());
  // AIC's 2k penalty keeps spurious higher orders out.
  EXPECT_LE(sel.value().order, 2);
}

TEST(OrderSelectionTest, CandidateScoresCoverAllOrders) {
  Rng rng(107);
  Vector series = SimulateAr({0.5}, 2000, 0.3, &rng);
  Result<OrderSelection> sel = SelectArOrder(series, 4);
  ASSERT_TRUE(sel.ok());
  // The winner's AIC is the minimum of the candidates.
  double min_aic = sel.value().candidate_aic[0];
  for (double a : sel.value().candidate_aic) min_aic = std::min(min_aic, a);
  EXPECT_DOUBLE_EQ(sel.value().aic, min_aic);
}

TEST(OrderSelectionTest, RejectsBadArguments) {
  EXPECT_FALSE(SelectArOrder({1, 2, 3}, 0).ok());
  EXPECT_FALSE(SelectArOrder({1, 2, 3}, 5).ok());
}

}  // namespace
}  // namespace elink
