// Tests for the proto runtime: round-trip serialization of every wire
// schema with fuzzed values (including CostUnits checks), decoder rejection
// of malformed frames, and end-to-end truncation-fault injection into each
// protocol built on the runtime.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <tuple>

#include "cluster/elink.h"
#include "cluster/elink_wire.h"
#include "cluster/maintenance_protocol.h"
#include "cluster/maintenance_wire.h"
#include "common/rng.h"
#include "data/terrain.h"
#include "index/path_wire.h"
#include "index/query_protocol.h"
#include "index/query_wire.h"
#include "obs/telemetry.h"
#include "proto/codec.h"
#include "proto/harness.h"

namespace elink {
namespace {

std::vector<double> FuzzBlock(Rng& rng, int max_len) {
  std::vector<double> out(rng.UniformInt(max_len + 1));
  for (double& v : out) v = rng.Uniform(-1e6, 1e6);
  return out;
}

long long FuzzI64(Rng& rng) {
  return static_cast<long long>(rng.UniformInt(1u << 30)) - (1 << 29);
}

/// Encode -> wire sanity (type/category/CostUnits) -> Decode -> equality.
template <typename M>
void CheckRoundTrip(const M& m) {
  const Message wire = proto::Encode(m);
  EXPECT_EQ(wire.type, M::kType);
  EXPECT_EQ(wire.category, M::kCategory);
  // The paper's unit accounting: one unit per carried coefficient, minimum
  // one per transmission.
  EXPECT_EQ(wire.CostUnits(),
            wire.doubles.empty() ? 1u : wire.doubles.size());
  Result<M> back = proto::Decode<M>(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, m);
}

TEST(ProtoCodecTest, ElinkSchemasRoundTrip) {
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    elink_wire::Expand expand;
    expand.root = FuzzI64(rng);
    expand.level = FuzzI64(rng);
    expand.feature = FuzzBlock(rng, 6);
    CheckRoundTrip(expand);
    CheckRoundTrip(elink_wire::Ack1{});
    CheckRoundTrip(elink_wire::Nack{});
    CheckRoundTrip(elink_wire::Ack2{});
    elink_wire::Phase1 p1;
    p1.round = FuzzI64(rng);
    CheckRoundTrip(p1);
    elink_wire::Phase2 p2;
    p2.round = FuzzI64(rng);
    CheckRoundTrip(p2);
    CheckRoundTrip(elink_wire::Start{});
  }
}

TEST(ProtoCodecTest, QuerySchemasRoundTrip) {
  Rng rng(22);
  for (int trial = 0; trial < 50; ++trial) {
    query_wire::Up up;
    up.payload = FuzzBlock(rng, 6);
    CheckRoundTrip(up);
    query_wire::ToBackboneRoot tbr;
    tbr.sender = FuzzI64(rng);
    tbr.payload = FuzzBlock(rng, 6);
    CheckRoundTrip(tbr);
    query_wire::Visit visit;
    visit.sender = FuzzI64(rng);
    if (trial % 2 == 0) visit.budget = FuzzI64(rng);  // Optional trailing.
    visit.payload = FuzzBlock(rng, 6);
    CheckRoundTrip(visit);
    query_wire::BackboneInclude binc;
    binc.sender = FuzzI64(rng);
    binc.payload = FuzzBlock(rng, 6);
    CheckRoundTrip(binc);
    query_wire::BackboneReply brep;
    brep.count = FuzzI64(rng);
    brep.incomplete = FuzzI64(rng);
    CheckRoundTrip(brep);
    query_wire::Descend descend;
    if (trial % 2 == 1) descend.budget = FuzzI64(rng);
    descend.payload = FuzzBlock(rng, 6);
    CheckRoundTrip(descend);
    query_wire::DescendInclude dinc;
    dinc.payload = FuzzBlock(rng, 6);
    CheckRoundTrip(dinc);
    query_wire::DescendReply drep;
    drep.count = FuzzI64(rng);
    drep.incomplete = FuzzI64(rng);
    CheckRoundTrip(drep);
    query_wire::Answer answer;
    answer.count = FuzzI64(rng);
    answer.incomplete = FuzzI64(rng);
    CheckRoundTrip(answer);
  }
}

TEST(ProtoCodecTest, MaintenanceSchemasRoundTrip) {
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    maint_wire::FetchUp fetch;
    fetch.origin = FuzzI64(rng);
    CheckRoundTrip(fetch);
    maint_wire::RootFeature rf;
    rf.feature = FuzzBlock(rng, 6);
    CheckRoundTrip(rf);
    maint_wire::Push push;
    push.feature = FuzzBlock(rng, 6);
    CheckRoundTrip(push);
    CheckRoundTrip(maint_wire::Probe{});
    maint_wire::ProbeReply reply;
    reply.root = FuzzI64(rng);
    reply.settled = trial % 2;
    reply.stored_root = FuzzBlock(rng, 6);
    CheckRoundTrip(reply);
    CheckRoundTrip(maint_wire::Leave{});
    CheckRoundTrip(maint_wire::Attach{});
    CheckRoundTrip(maint_wire::Orphan{});
    maint_wire::RootChanged rc;
    rc.root = FuzzI64(rng);
    rc.feature = FuzzBlock(rng, 6);
    CheckRoundTrip(rc);
    maint_wire::EpochReport er;
    er.root = FuzzI64(rng);
    er.origin = FuzzI64(rng);
    er.seq = FuzzI64(rng);
    er.ttl = FuzzI64(rng);
    CheckRoundTrip(er);
    maint_wire::VerifyAck va;
    va.root = FuzzI64(rng);
    va.seq = FuzzI64(rng);
    va.feature = FuzzBlock(rng, 6);
    CheckRoundTrip(va);
    maint_wire::VerifyGone vg;
    vg.seq = FuzzI64(rng);
    CheckRoundTrip(vg);
  }
}

TEST(ProtoCodecTest, PathSchemasRoundTrip) {
  Rng rng(24);
  for (int trial = 0; trial < 50; ++trial) {
    path_wire::PathUp up;
    up.danger = FuzzBlock(rng, 6);
    up.gamma = rng.Uniform(0.0, 1e3);
    CheckRoundTrip(up);
    path_wire::PathRoute route;
    route.danger = FuzzBlock(rng, 6);
    route.gamma = rng.Uniform(0.0, 1e3);
    CheckRoundTrip(route);
    path_wire::PathVisit visit;
    visit.sender = FuzzI64(rng);
    visit.danger = FuzzBlock(rng, 6);
    visit.gamma = rng.Uniform(0.0, 1e3);
    CheckRoundTrip(visit);
    path_wire::PathDrill drill;
    drill.danger = FuzzBlock(rng, 6);
    drill.gamma = rng.Uniform(0.0, 1e3);
    CheckRoundTrip(drill);
    CheckRoundTrip(path_wire::PathDrillDone{});
    CheckRoundTrip(path_wire::PathVisitDone{});
  }
}

TEST(ProtoCodecTest, RejectsMalformedFrames) {
  elink_wire::Expand expand;
  expand.root = 4;
  expand.level = 2;
  expand.feature = {1.0, 2.0};
  const Message good = proto::Encode(expand);
  ASSERT_TRUE(proto::Decode<elink_wire::Expand>(good).ok());

  // Wrong type tag.
  Message wrong_type = good;
  wrong_type.type = elink_wire::Ack1::kType;
  EXPECT_FALSE(proto::Decode<elink_wire::Expand>(wrong_type).ok());

  // Truncated ints (below the required arity).
  Message short_ints = good;
  short_ints.ints.pop_back();
  EXPECT_FALSE(proto::Decode<elink_wire::Expand>(short_ints).ok());

  // Surplus ints beyond required + optional.
  Message long_ints = good;
  long_ints.ints.push_back(9);
  EXPECT_FALSE(proto::Decode<elink_wire::Expand>(long_ints).ok());

  // A block-less schema must reject any doubles at all.
  query_wire::Answer answer;
  answer.count = 3;
  answer.incomplete = 0;
  Message stray_doubles = proto::Encode(answer);
  stray_doubles.doubles.push_back(1.5);
  EXPECT_FALSE(proto::Decode<query_wire::Answer>(stray_doubles).ok());

  // A fixed double chopped off (PathUp needs at least its gamma field).
  path_wire::PathUp up;
  up.danger = {};
  up.gamma = 2.0;
  Message no_gamma = proto::Encode(up);
  no_gamma.doubles.clear();
  EXPECT_FALSE(proto::Decode<path_wire::PathUp>(no_gamma).ok());

  // An optional trailing int decodes as absent, not as an error.
  query_wire::Visit visit;
  visit.sender = 7;
  visit.budget = 123;
  visit.payload = {0.5};
  Message no_budget = proto::Encode(visit);
  no_budget.ints.pop_back();
  Result<query_wire::Visit> back = proto::Decode<query_wire::Visit>(no_budget);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->budget.has_value());
}

SensorDataset Terrain(int n) {
  TerrainConfig cfg;
  cfg.num_nodes = n;
  cfg.radio_range_fraction = 0.1;
  cfg.seed = 9;
  return std::move(MakeTerrainDataset(cfg)).value();
}

TEST(TruncationInjectionTest, ElinkCountsErrorsAndStaysValid) {
  const SensorDataset ds = Terrain(120);
  ElinkConfig cfg;
  cfg.delta = 0.25 * FeatureDiameter(ds);
  cfg.seed = 7;
  cfg.fault.truncate_probability = 0.3;
  Result<ElinkResult> r = RunElink(ds, cfg, ElinkMode::kImplicit);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().stats.decode_errors(), 0u);
  // Every node still ends up with a cluster assignment (worst case its own
  // singleton), and truncation never crashes a handler.
  for (int root : r.value().clustering.root_of) EXPECT_GE(root, 0);
}

TEST(TruncationInjectionTest, MaintenanceCountsErrorsAndSurvives) {
  const SensorDataset ds = Terrain(100);
  const double delta = 0.25 * FeatureDiameter(ds);
  ElinkConfig cfg;
  cfg.delta = delta;
  cfg.seed = 7;
  Result<ElinkResult> clean = RunElink(ds, cfg, ElinkMode::kImplicit);
  ASSERT_TRUE(clean.ok());

  MaintenanceConfig mcfg;
  mcfg.delta = delta;
  mcfg.slack = 0.05 * delta;
  FaultPlan fault;
  fault.truncate_probability = 0.6;
  DistributedMaintenance maint(ds.topology, clean.value().clustering,
                               ds.features, ds.metric, mcfg,
                               /*synchronous=*/true, /*seed=*/11, fault);
  // Large jumps defeat the A1-A3 absorption checks and force fetch/push/
  // probe traffic, all of it exposed to in-flight truncation.
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const int node = static_cast<int>(rng.UniformInt(100));
    Feature f = ds.features[node];
    for (double& x : f) x += rng.Uniform(2.0, 4.0) * delta;
    maint.ApplyUpdate(node, f);
  }
  EXPECT_GT(maint.stats().decode_errors(), 0u);
  // Every node still names a live root; no handler crashed on short frames.
  const Clustering now = maint.CurrentClustering();
  for (int root : now.root_of) EXPECT_GE(root, 0);
}

TEST(TruncationInjectionTest, RangeQueryCountsErrorsAndFinishes) {
  const SensorDataset ds = Terrain(120);
  const double delta = 0.25 * FeatureDiameter(ds);
  ElinkConfig cfg;
  cfg.delta = delta;
  cfg.seed = 7;
  Result<ElinkResult> clean = RunElink(ds, cfg, ElinkMode::kImplicit);
  ASSERT_TRUE(clean.ok());
  const Clustering& clustering = clean.value().clustering;
  const std::vector<int> tree =
      BuildClusterTrees(clustering, ds.topology.adjacency);
  const ClusterIndex index =
      ClusterIndex::Build(clustering, tree, ds.features, *ds.metric);
  const Backbone backbone =
      Backbone::Build(clustering, ds.topology.adjacency, nullptr,
                      &ds.features, ds.metric.get());

  DistributedRangeQuery::ProtocolOptions options;
  options.fault.truncate_probability = 0.5;
  options.node_deadline = 400.0;
  options.query_deadline = 4000.0;
  DistributedRangeQuery protocol(ds.topology, clustering, index, backbone,
                                 ds.features, ds.metric, options);
  Rng rng(17);
  uint64_t decode_errors = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const Feature q = ds.features[rng.UniformInt(120)];
    Result<DistributedQueryOutcome> out =
        protocol.Run(static_cast<int>(rng.UniformInt(120)), q, 0.7 * delta);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    decode_errors += out.value().stats.decode_errors();
  }
  EXPECT_GT(decode_errors, 0u);
}

// -- RunHarness::set_trace ordering -----------------------------------------

namespace tracewire {
/// Minimal schema for the trace-ordering protocol below.
struct Ping {
  static constexpr int kType = 1;
  static constexpr const char* kCategory = "trace_ping";
  long long ttl = 0;
  template <class V>
  void VisitFields(V& v) {
    v.I64(ttl);
  }
  bool operator==(const Ping&) const = default;
};
}  // namespace tracewire

/// Every node pings all neighbors at install; receivers ping back while the
/// ttl lasts.  Over ReliableChannel with lossy links this produces exactly
/// the traffic mix the trace hook documents: data frames, transport acks,
/// retransmissions, and duplicate deliveries.
class TracePingNode : public proto::ProtocolNode {
 public:
  explicit TracePingNode(const ReliableChannel::Config& rel) {
    EnableReliable(rel);
    OnMsg<tracewire::Ping>([this](int from, const tracewire::Ping& m) {
      if (m.ttl > 0) {
        tracewire::Ping reply;
        reply.ttl = m.ttl - 1;
        Send(from, reply);
      }
    });
  }

 protected:
  // The initial pings go out on a time-0 timer rather than from OnReady:
  // during install the neighbors are not all in place yet.
  void OnReady() override { network()->SetTimer(id(), 0.0, /*timer_id=*/1); }

  void OnProtocolTimer(int timer_id) override {
    ELINK_CHECK(timer_id == 1);
    tracewire::Ping m;
    m.ttl = 2;
    for (int nb : network()->neighbors(id())) Send(nb, m);
  }
};

struct TracedFrame {
  double now;
  int from;
  int to;
  int type;
  bool ack;
  long long seq;
  bool operator==(const TracedFrame&) const = default;
};

std::vector<TracedFrame> RunTracedPing(uint64_t seed) {
  const SensorDataset ds = Terrain(36);
  proto::RunHarness::Options hopt;
  hopt.net.seed = seed;
  hopt.net.fault.drop_probability = 0.25;
  proto::RunHarness harness(ds.topology, hopt);
  std::vector<TracedFrame> trace;
  harness.set_trace([&](double now, int from, int to, const Message& msg) {
    trace.push_back({now, from, to, msg.type, msg.rel_ack, msg.rel_seq});
  });
  ReliableChannel::Config rel;
  rel.rto = 6.0;
  rel.max_retries = 4;
  harness.InstallNodes(
      [&](int) { return std::make_unique<TracePingNode>(rel); });
  harness.Run();
  return trace;
}

TEST(RunHarnessTraceTest, DeterministicOrderWithAcksAndDuplicates) {
  const std::vector<TracedFrame> trace = RunTracedPing(/*seed=*/5);
  ASSERT_FALSE(trace.empty());

  // Delivery order is the event queue's deterministic (time, seq) order:
  // timestamps never run backwards across the whole trace, acks and
  // duplicates included.
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].now, trace[i - 1].now)
        << "trace order regressed at entry " << i;
  }

  // The raw hook sees the transport plane: acks for delivered data frames
  // and, with lossy links, duplicate deliveries of retransmitted frames.
  size_t acks = 0;
  std::map<std::tuple<int, int, long long>, int> data_copies;
  for (const TracedFrame& f : trace) {
    if (f.ack) {
      ++acks;
    } else if (f.seq >= 0) {
      ++data_copies[{f.from, f.to, f.seq}];
    }
  }
  size_t duplicates = 0;
  for (const auto& [key, copies] : data_copies) {
    if (copies > 1) duplicates += static_cast<size_t>(copies - 1);
  }
  EXPECT_GT(acks, 0u);
  EXPECT_GT(duplicates, 0u) << "expected lost acks to force duplicate "
                               "deliveries under 25% loss";

  // Same seed, same trace — byte for byte.
  EXPECT_EQ(trace, RunTracedPing(/*seed=*/5));
}

// -- RunHarness watchdog boundary behavior -----------------------------------
//
// The quiet-period watchdog compares an activity *counter* snapshot, not
// timestamps, so events landing exactly on the expiry instant are resolved
// by the event queue's (time, insertion) order: protocol events scheduled
// before Run() beat the watchdog tick, the horizon no-op (armed after the
// watchdog inside Run()) never does.  These tests pin all four boundaries.

class WatchdogProbeNode : public proto::ProtocolNode {
 public:
  explicit WatchdogProbeNode(std::function<void()> on_timer = nullptr)
      : on_timer_(std::move(on_timer)) {}

 protected:
  void OnProtocolTimer(int) override {
    if (on_timer_) on_timer_();
  }

 private:
  std::function<void()> on_timer_;
};

TEST(RunHarnessWatchdogTest, ActivityTieAtExpiryRearmsInsteadOfFiring) {
  proto::RunHarness::Options hopt;
  hopt.quiet_timeout = 10.0;
  proto::RunHarness harness(MakeGridTopology(1, 2), hopt);
  harness.InstallNodes(
      [](int) { return std::make_unique<WatchdogProbeNode>(); });
  // A protocol timer at exactly the watchdog expiry.  It was scheduled
  // before Run() armed the watchdog, so the (time, insertion) tie-break
  // delivers it first: the tick sees fresh activity and re-arms instead of
  // declaring a false timeout at t=10.
  harness.net().SetTimer(0, 10.0, /*timer_id=*/1);
  const proto::RunHarness::Report report = harness.Run();
  EXPECT_TRUE(report.timed_out);  // The 10..20 window really was quiet.
  EXPECT_DOUBLE_EQ(report.end_time, 20.0)
      << "first tick must re-arm, not fire";
}

TEST(RunHarnessWatchdogTest, DoneAtExpiryTieStandsDownWithoutTimeout) {
  proto::RunHarness::Options hopt;
  hopt.quiet_timeout = 10.0;
  proto::RunHarness harness(MakeGridTopology(1, 2), hopt);
  bool done = false;
  harness.InstallNodes([&](int) {
    return std::make_unique<WatchdogProbeNode>([&done] { done = true; });
  });
  harness.set_done([&done] { return done; });
  // Completion lands on the expiry instant; the watchdog must consult done()
  // before comparing activity and stand down entirely (no re-arm: the run
  // ends at 10, not 20).
  harness.net().SetTimer(0, 10.0, /*timer_id=*/1);
  const proto::RunHarness::Report report = harness.Run();
  EXPECT_FALSE(report.timed_out);
  EXPECT_DOUBLE_EQ(report.end_time, 10.0);
}

TEST(RunHarnessWatchdogTest, HorizonNoOpAtExpiryIsNotActivity) {
  proto::RunHarness::Options hopt;
  hopt.quiet_timeout = 10.0;
  hopt.run_horizon = 10.0;  // Same instant as the watchdog expiry.
  proto::RunHarness harness(MakeGridTopology(1, 2), hopt);
  harness.InstallNodes(
      [](int) { return std::make_unique<WatchdogProbeNode>(); });
  const proto::RunHarness::Report report = harness.Run();
  // The horizon's clock-keeping no-op shares the expiry instant but touches
  // no handler: the run is genuinely quiet and must time out.
  EXPECT_TRUE(report.timed_out);
  EXPECT_DOUBLE_EQ(report.end_time, 10.0);
}

TEST(RunHarnessWatchdogTest, ReArmIsFromExpiryNotFromLastActivity) {
  proto::RunHarness::Options hopt;
  hopt.quiet_timeout = 10.0;
  proto::RunHarness harness(MakeGridTopology(1, 2), hopt);
  obs::RunTelemetry tele;
  harness.set_observer(&tele);
  harness.InstallNodes(
      [](int) { return std::make_unique<WatchdogProbeNode>(); });
  // Activity at t=9.5, inside the first window.  The tick at t=10 re-arms
  // for a full window from the *expiry* (next tick t=20), not from the last
  // activity (t=19.5): the ELink watchdog semantics the harness inherited.
  harness.net().SetTimer(0, 9.5, /*timer_id=*/1);
  const proto::RunHarness::Report report = harness.Run();
  EXPECT_TRUE(report.timed_out);
  EXPECT_DOUBLE_EQ(report.end_time, 20.0);
  EXPECT_EQ(tele.metrics().counter("harness.watchdog_arms"), 2u);
  EXPECT_EQ(tele.metrics().counter("harness.watchdog_fires"), 1u);
}

}  // namespace
}  // namespace elink
