// Tests for the proto runtime: round-trip serialization of every wire
// schema with fuzzed values (including CostUnits checks), decoder rejection
// of malformed frames, and end-to-end truncation-fault injection into each
// protocol built on the runtime.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/elink.h"
#include "cluster/elink_wire.h"
#include "cluster/maintenance_protocol.h"
#include "cluster/maintenance_wire.h"
#include "common/rng.h"
#include "data/terrain.h"
#include "index/path_wire.h"
#include "index/query_protocol.h"
#include "index/query_wire.h"
#include "obs/telemetry.h"
#include "proto/codec.h"
#include "proto/harness.h"
#include "proto/snapshot.h"
#include "proto/version.h"
#include "proto/wire.h"

namespace elink {
namespace {

std::vector<double> FuzzBlock(Rng& rng, int max_len) {
  std::vector<double> out(rng.UniformInt(max_len + 1));
  for (double& v : out) v = rng.Uniform(-1e6, 1e6);
  return out;
}

long long FuzzI64(Rng& rng) {
  return static_cast<long long>(rng.UniformInt(1u << 30)) - (1 << 29);
}

/// Encode -> wire sanity (type/category/CostUnits) -> Decode -> equality.
template <typename M>
void CheckRoundTrip(const M& m) {
  const Message wire = proto::Encode(m);
  EXPECT_EQ(wire.type, M::kType);
  EXPECT_EQ(wire.category, M::kCategory);
  // The paper's unit accounting: one unit per carried coefficient, minimum
  // one per transmission.
  EXPECT_EQ(wire.CostUnits(),
            wire.doubles.empty() ? 1u : wire.doubles.size());
  Result<M> back = proto::Decode<M>(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, m);
}

TEST(ProtoCodecTest, ElinkSchemasRoundTrip) {
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    elink_wire::Expand expand;
    expand.root = FuzzI64(rng);
    expand.level = FuzzI64(rng);
    expand.feature = FuzzBlock(rng, 6);
    CheckRoundTrip(expand);
    CheckRoundTrip(elink_wire::Ack1{});
    CheckRoundTrip(elink_wire::Nack{});
    CheckRoundTrip(elink_wire::Ack2{});
    elink_wire::Phase1 p1;
    p1.round = FuzzI64(rng);
    CheckRoundTrip(p1);
    elink_wire::Phase2 p2;
    p2.round = FuzzI64(rng);
    CheckRoundTrip(p2);
    CheckRoundTrip(elink_wire::Start{});
  }
}

TEST(ProtoCodecTest, QuerySchemasRoundTrip) {
  Rng rng(22);
  for (int trial = 0; trial < 50; ++trial) {
    query_wire::Up up;
    up.payload = FuzzBlock(rng, 6);
    CheckRoundTrip(up);
    query_wire::ToBackboneRoot tbr;
    tbr.sender = FuzzI64(rng);
    tbr.payload = FuzzBlock(rng, 6);
    CheckRoundTrip(tbr);
    query_wire::Visit visit;
    visit.sender = FuzzI64(rng);
    if (trial % 2 == 0) visit.budget = FuzzI64(rng);  // Optional trailing.
    visit.payload = FuzzBlock(rng, 6);
    CheckRoundTrip(visit);
    query_wire::BackboneInclude binc;
    binc.sender = FuzzI64(rng);
    binc.payload = FuzzBlock(rng, 6);
    CheckRoundTrip(binc);
    query_wire::BackboneReply brep;
    brep.count = FuzzI64(rng);
    brep.incomplete = FuzzI64(rng);
    CheckRoundTrip(brep);
    query_wire::Descend descend;
    if (trial % 2 == 1) descend.budget = FuzzI64(rng);
    descend.payload = FuzzBlock(rng, 6);
    CheckRoundTrip(descend);
    query_wire::DescendInclude dinc;
    dinc.payload = FuzzBlock(rng, 6);
    CheckRoundTrip(dinc);
    query_wire::DescendReply drep;
    drep.count = FuzzI64(rng);
    drep.incomplete = FuzzI64(rng);
    CheckRoundTrip(drep);
    query_wire::Answer answer;
    answer.count = FuzzI64(rng);
    answer.incomplete = FuzzI64(rng);
    CheckRoundTrip(answer);
  }
}

TEST(ProtoCodecTest, MaintenanceSchemasRoundTrip) {
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    maint_wire::FetchUp fetch;
    fetch.origin = FuzzI64(rng);
    CheckRoundTrip(fetch);
    maint_wire::RootFeature rf;
    rf.feature = FuzzBlock(rng, 6);
    CheckRoundTrip(rf);
    maint_wire::Push push;
    push.feature = FuzzBlock(rng, 6);
    CheckRoundTrip(push);
    CheckRoundTrip(maint_wire::Probe{});
    maint_wire::ProbeReply reply;
    reply.root = FuzzI64(rng);
    reply.settled = trial % 2;
    reply.stored_root = FuzzBlock(rng, 6);
    CheckRoundTrip(reply);
    CheckRoundTrip(maint_wire::Leave{});
    CheckRoundTrip(maint_wire::Attach{});
    CheckRoundTrip(maint_wire::Orphan{});
    maint_wire::RootChanged rc;
    rc.root = FuzzI64(rng);
    rc.feature = FuzzBlock(rng, 6);
    CheckRoundTrip(rc);
    maint_wire::EpochReport er;
    er.root = FuzzI64(rng);
    er.origin = FuzzI64(rng);
    er.seq = FuzzI64(rng);
    er.ttl = FuzzI64(rng);
    CheckRoundTrip(er);
    maint_wire::VerifyAck va;
    va.root = FuzzI64(rng);
    va.seq = FuzzI64(rng);
    va.feature = FuzzBlock(rng, 6);
    CheckRoundTrip(va);
    maint_wire::VerifyGone vg;
    vg.seq = FuzzI64(rng);
    CheckRoundTrip(vg);
  }
}

TEST(ProtoCodecTest, PathSchemasRoundTrip) {
  Rng rng(24);
  for (int trial = 0; trial < 50; ++trial) {
    path_wire::PathUp up;
    up.danger = FuzzBlock(rng, 6);
    up.gamma = rng.Uniform(0.0, 1e3);
    CheckRoundTrip(up);
    path_wire::PathRoute route;
    route.danger = FuzzBlock(rng, 6);
    route.gamma = rng.Uniform(0.0, 1e3);
    CheckRoundTrip(route);
    path_wire::PathVisit visit;
    visit.sender = FuzzI64(rng);
    visit.danger = FuzzBlock(rng, 6);
    visit.gamma = rng.Uniform(0.0, 1e3);
    CheckRoundTrip(visit);
    path_wire::PathDrill drill;
    drill.danger = FuzzBlock(rng, 6);
    drill.gamma = rng.Uniform(0.0, 1e3);
    CheckRoundTrip(drill);
    CheckRoundTrip(path_wire::PathDrillDone{});
    CheckRoundTrip(path_wire::PathVisitDone{});
  }
}

TEST(ProtoCodecTest, RejectsMalformedFrames) {
  elink_wire::Expand expand;
  expand.root = 4;
  expand.level = 2;
  expand.feature = {1.0, 2.0};
  const Message good = proto::Encode(expand);
  ASSERT_TRUE(proto::Decode<elink_wire::Expand>(good).ok());

  // Wrong type tag.
  Message wrong_type = good;
  wrong_type.type = elink_wire::Ack1::kType;
  EXPECT_FALSE(proto::Decode<elink_wire::Expand>(wrong_type).ok());

  // Truncated ints (below the required arity).
  Message short_ints = good;
  short_ints.ints.pop_back();
  EXPECT_FALSE(proto::Decode<elink_wire::Expand>(short_ints).ok());

  // Surplus ints beyond required + optional.
  Message long_ints = good;
  long_ints.ints.push_back(9);
  EXPECT_FALSE(proto::Decode<elink_wire::Expand>(long_ints).ok());

  // A block-less schema must reject any doubles at all.
  query_wire::Answer answer;
  answer.count = 3;
  answer.incomplete = 0;
  Message stray_doubles = proto::Encode(answer);
  stray_doubles.doubles.push_back(1.5);
  EXPECT_FALSE(proto::Decode<query_wire::Answer>(stray_doubles).ok());

  // A fixed double chopped off (PathUp needs at least its gamma field).
  path_wire::PathUp up;
  up.danger = {};
  up.gamma = 2.0;
  Message no_gamma = proto::Encode(up);
  no_gamma.doubles.clear();
  EXPECT_FALSE(proto::Decode<path_wire::PathUp>(no_gamma).ok());

  // An optional trailing int decodes as absent, not as an error.
  query_wire::Visit visit;
  visit.sender = 7;
  visit.budget = 123;
  visit.payload = {0.5};
  Message no_budget = proto::Encode(visit);
  no_budget.ints.pop_back();
  Result<query_wire::Visit> back = proto::Decode<query_wire::Visit>(no_budget);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->budget.has_value());
}

// -- Byte-level wire format (proto/wire.h) ----------------------------------

/// Integer fuzzer spanning every varint regime: tiny deltas, mid-range ids,
/// full 64-bit values, and the exact two's-complement extremes.
long long FuzzWireI64(Rng& rng) {
  switch (rng.UniformInt(4)) {
    case 0:
      return static_cast<long long>(rng.UniformInt(16)) - 8;
    case 1:
      return FuzzI64(rng);
    case 2:
      return static_cast<long long>(rng.Next());
    default:
      return rng.Bernoulli(0.5) ? INT64_MAX : INT64_MIN;
  }
}

/// Generic field-visitor that fills any schema with fuzzed values — the same
/// VisitFields walk the codec uses, so it covers every field of all 34
/// schemas without per-schema code.
struct WireFuzzFill {
  Rng* rng;
  void I64(long long& v) { v = FuzzWireI64(*rng); }
  void OptI64(std::optional<long long>& v) {
    if (rng->Bernoulli(0.5)) {
      v = FuzzWireI64(*rng);
    } else {
      v.reset();
    }
  }
  void F64(double& v) { v = rng->Uniform(-1e9, 1e9); }
  void Block(std::vector<double>& v) { v = FuzzBlock(*rng, 6); }
};

/// Full byte-level round trip for one schema: typed struct -> Message ->
/// frame bytes -> Message -> typed struct, with the category re-derived from
/// the packet id the way a byte-level receiver would.
template <typename M>
void CheckByteRoundTrip(M m, Rng& rng, const char* (*category_of)(int)) {
  WireFuzzFill fill{&rng};
  m.VisitFields(fill);
  Message encoded = proto::Encode(m);
  if (rng.Bernoulli(0.4)) {  // Sometimes ride a reliable-transport envelope.
    encoded.rel_seq = static_cast<long long>(rng.UniformInt(1u << 20));
    encoded.rel_from = static_cast<int>(rng.UniformInt(1024));
    encoded.rel_ack = rng.Bernoulli(0.5);
  }
  const std::vector<uint8_t> frame = wire::EncodeFrame(encoded);
  ASSERT_EQ(frame.size(), wire::FrameSize(encoded));
  Result<Message> back = wire::DecodeFrame(frame);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->category.empty());  // The category never travels.
  const char* category = category_of(back->type);
  ASSERT_NE(category, nullptr);
  EXPECT_STREQ(category, M::kCategory);
  back->category = category;
  EXPECT_EQ(back->rel_seq, encoded.rel_seq);
  EXPECT_EQ(back->rel_from, encoded.rel_from);
  EXPECT_EQ(back->rel_ack, encoded.rel_ack);
  Result<M> typed = proto::Decode<M>(*back);
  ASSERT_TRUE(typed.ok()) << typed.status().ToString();
  EXPECT_EQ(*typed, m);
}

TEST(WireFormatTest, AllSchemasByteRoundTrip) {
  Rng rng(2026);
  for (int trial = 0; trial < 25; ++trial) {
    elink_wire::ForEachSchema([&](auto m) {
      CheckByteRoundTrip(std::move(m), rng, &elink_wire::CategoryForType);
    });
    maint_wire::ForEachSchema([&](auto m) {
      CheckByteRoundTrip(std::move(m), rng, &maint_wire::CategoryForType);
    });
    query_wire::ForEachSchema([&](auto m) {
      CheckByteRoundTrip(std::move(m), rng, &query_wire::CategoryForType);
    });
    path_wire::ForEachSchema([&](auto m) {
      CheckByteRoundTrip(std::move(m), rng, &path_wire::CategoryForType);
    });
  }
}

/// A representative frame with every body feature present: multiple ints
/// (exercising delta coding), a double block, and the reliable envelope.
Message DenseWireMessage() {
  maint_wire::ProbeReply reply;
  reply.root = 1'000'000'007;
  reply.settled = 1;
  reply.stored_root = {3.25, -0.5, 1e300};
  Message msg = proto::Encode(reply);
  msg.rel_seq = 41;
  msg.rel_from = 17;
  return msg;
}

TEST(WireFormatTest, TruncationAtEveryByteOffsetRejects) {
  const std::vector<uint8_t> frame = wire::EncodeFrame(DenseWireMessage());
  for (size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(wire::DecodeFrame(frame.data(), len).ok())
        << "prefix of " << len << " bytes decoded";
    size_t consumed = 0;
    EXPECT_FALSE(wire::DecodeFrame(frame.data(), len, &consumed).ok())
        << "prefix of " << len << " bytes decoded in stream mode";
  }
  ASSERT_TRUE(wire::DecodeFrame(frame).ok());
}

TEST(WireFormatTest, EveryBitFlipRejects) {
  // CRC32 detects all bursts shorter than 32 bits, the magic byte is checked
  // first, and a flip inside the CRC trailer itself mismatches the body: a
  // single flipped bit anywhere is a guaranteed deterministic reject.
  std::vector<uint8_t> frame = wire::EncodeFrame(DenseWireMessage());
  for (size_t off = 0; off < frame.size(); ++off) {
    for (int bit = 0; bit < 8; ++bit) {
      frame[off] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(wire::DecodeFrame(frame).ok())
          << "flip of bit " << bit << " at offset " << off << " decoded";
      frame[off] ^= static_cast<uint8_t>(1u << bit);
    }
  }
  ASSERT_TRUE(wire::DecodeFrame(frame).ok());
}

/// Builds a frame by hand around `body`, with a valid CRC — for injecting
/// defects the public encoder cannot produce.
std::vector<uint8_t> FrameFromBody(uint8_t version,
                                   const std::vector<uint8_t>& body) {
  std::vector<uint8_t> out;
  out.push_back(wire::kFrameMagic);
  const size_t covered_start = out.size();
  out.push_back(version);
  wire::PutVarint(body.size(), &out);
  out.insert(out.end(), body.begin(), body.end());
  wire::PutU32Le(
      wire::Crc32(out.data() + covered_start, out.size() - covered_start),
      &out);
  return out;
}

/// The body bytes of a valid frame (everything between the length varint and
/// the CRC), so tests can mutate the body and re-frame it with a good CRC.
std::vector<uint8_t> BodyOf(const Message& msg) {
  std::vector<uint8_t> body;
  wire::EncodeBody(msg, &body);
  return body;
}

TEST(WireFormatTest, UnknownVersionRejectsEvenWithValidCrc) {
  const std::vector<uint8_t> body = BodyOf(DenseWireMessage());
  for (const uint8_t version : {uint8_t{0}, uint8_t{2}, uint8_t{255}}) {
    const std::vector<uint8_t> frame = FrameFromBody(version, body);
    const Result<Message> r = wire::DecodeFrame(frame);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented)
        << r.status().ToString();
  }
  // The same body under the supported version is fine.
  EXPECT_TRUE(wire::DecodeFrame(FrameFromBody(wire::kWireVersion, body)).ok());
}

TEST(WireFormatTest, BadMagicRejects) {
  std::vector<uint8_t> frame = wire::EncodeFrame(DenseWireMessage());
  frame[0] = 0x00;
  EXPECT_FALSE(wire::DecodeFrame(frame).ok());
  EXPECT_FALSE(wire::DecodeFrame(frame.data(), 0).ok());  // Empty span.
}

TEST(WireFormatTest, UnknownFlagBitsReject) {
  Message msg = DenseWireMessage();
  std::vector<uint8_t> body = BodyOf(msg);
  // The flags byte sits right after the packet-id zigzag varint.
  const size_t flags_off =
      wire::VarintSize(wire::ZigzagEncode(msg.type));
  body[flags_off] |= 0x04;  // An undefined flag bit, CRC made valid again.
  const Result<Message> r = wire::DecodeFrame(FrameFromBody(wire::kWireVersion, body));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("flag"), std::string::npos)
      << r.status().ToString();
}

TEST(WireFormatTest, TrailingBytesInsideBodyReject) {
  std::vector<uint8_t> body = BodyOf(DenseWireMessage());
  body.push_back(0x00);  // Length varint will claim the extra byte.
  EXPECT_FALSE(wire::DecodeFrame(FrameFromBody(wire::kWireVersion, body)).ok());
}

TEST(WireFormatTest, FieldCountCapsReject) {
  // A body claiming 2^20 + 1 doubles with no data behind the claim.
  std::vector<uint8_t> body;
  wire::PutZigzag(1, &body);                       // Packet id.
  body.push_back(0);                               // Flags.
  wire::PutVarint(0, &body);                       // nints.
  wire::PutVarint(wire::kMaxFieldCount + 1, &body);  // ndoubles: over cap.
  EXPECT_FALSE(wire::DecodeFrame(FrameFromBody(wire::kWireVersion, body)).ok());
}

TEST(WireFormatTest, StreamFramingConsumesExactly) {
  const Message a = DenseWireMessage();
  const Message b = proto::Encode(elink_wire::Start{});
  std::vector<uint8_t> stream = wire::EncodeFrame(a);
  const size_t first_len = stream.size();
  wire::EncodeFrame(b, &stream);

  // Without `consumed`, trailing bytes are an error.
  EXPECT_FALSE(wire::DecodeFrame(stream).ok());

  // With `consumed`, the stream parses frame by frame.
  size_t consumed = 0;
  Result<Message> first = wire::DecodeFrame(stream.data(), stream.size(),
                                            &consumed);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(consumed, first_len);
  EXPECT_EQ(first->type, a.type);
  Result<Message> second = wire::DecodeFrame(stream.data() + consumed,
                                             stream.size() - consumed,
                                             &consumed);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(consumed, stream.size() - first_len);
  EXPECT_EQ(second->type, b.type);
}

TEST(WireFormatTest, DeltaCodingKeepsNearbyIdsSmall) {
  // Two billion-scale ids one apart cost five varint bytes for the first and
  // one for the delta; the same ids with opposite signs pay full freight.
  elink_wire::Expand near;
  near.root = 1'000'000'000;
  near.level = 1'000'000'001;
  elink_wire::Expand far = near;
  far.level = -1'000'000'001;
  const size_t near_bytes = wire::FrameSize(proto::Encode(near));
  const size_t far_bytes = wire::FrameSize(proto::Encode(far));
  EXPECT_LT(near_bytes, far_bytes);
  EXPECT_EQ(far_bytes - near_bytes, 4u);  // 5-byte delta shrinks to 1.
}

TEST(WireFormatTest, IntExtremesAndDeltaWraparoundRoundTrip) {
  maint_wire::EpochReport er;
  er.root = INT64_MAX;
  er.origin = INT64_MIN;  // Delta wraps the full two's-complement circle.
  er.seq = -1;
  er.ttl = INT64_MAX;
  const Message encoded = proto::Encode(er);
  Result<Message> back = wire::DecodeFrame(wire::EncodeFrame(encoded));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  back->category = maint_wire::EpochReport::kCategory;
  Result<maint_wire::EpochReport> typed =
      proto::Decode<maint_wire::EpochReport>(*back);
  ASSERT_TRUE(typed.ok());
  EXPECT_EQ(*typed, er);
}

// -- Version negotiation (proto/version.h) ----------------------------------

TEST(VersionNegotiationTest, PicksHighestCommonVersion) {
  Result<uint8_t> v =
      proto::NegotiateVersion(proto::VersionRange{1, 3}, proto::VersionRange{2, 5});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 3);
  v = proto::NegotiateVersion(proto::VersionRange{2, 5}, proto::VersionRange{1, 3});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 3);
  v = proto::NegotiateVersion(proto::VersionRange{1, 1}, proto::VersionRange{1, 1});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 1);
}

TEST(VersionNegotiationTest, DisjointSpansFailGracefully) {
  const Result<uint8_t> v =
      proto::NegotiateVersion(proto::VersionRange{1, 2}, proto::VersionRange{3, 4});
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kFailedPrecondition);
}

/// Ships a handshake schema through actual frame bytes, the way a deployment
/// would: Encode -> EncodeFrame -> DecodeFrame -> Decode.
template <typename M>
M ShipOverWire(const M& m) {
  Result<Message> framed = wire::DecodeFrame(wire::EncodeFrame(proto::Encode(m)));
  EXPECT_TRUE(framed.ok()) << framed.status().ToString();
  framed->category = M::kCategory;
  Result<M> back = proto::Decode<M>(*framed);
  EXPECT_TRUE(back.ok()) << back.status().ToString();
  return *back;
}

TEST(VersionNegotiationTest, HandshakeOverWireFramesEstablishes) {
  proto::VersionHandshake a, b;
  EXPECT_EQ(a.state(), proto::VersionHandshake::State::kIdle);

  const proto::handshake_wire::Hello hello_a = ShipOverWire(a.MakeHello());
  EXPECT_EQ(a.state(), proto::VersionHandshake::State::kHelloSent);
  EXPECT_EQ(hello_a.version_min, wire::kWireVersionMin);
  EXPECT_EQ(hello_a.version_max, wire::kWireVersionMax);

  // The passive side answers from kIdle and establishes.
  Result<uint8_t> agreed_b = b.OnHello(hello_a);
  ASSERT_TRUE(agreed_b.ok());
  EXPECT_EQ(b.state(), proto::VersionHandshake::State::kEstablished);

  const proto::handshake_wire::Hello hello_b = ShipOverWire(b.MakeHello());
  Result<uint8_t> agreed_a = a.OnHello(hello_b);
  ASSERT_TRUE(agreed_a.ok());
  EXPECT_EQ(a.state(), proto::VersionHandshake::State::kEstablished);
  EXPECT_EQ(a.agreed_version(), b.agreed_version());
  EXPECT_EQ(a.agreed_version(), wire::kWireVersion);
}

TEST(VersionNegotiationTest, DisjointHandshakeRejectsWithSpan) {
  proto::VersionHandshake low(proto::VersionRange{1, 1});
  proto::VersionHandshake high(proto::VersionRange{7, 9});

  const proto::handshake_wire::Hello hello = ShipOverWire(low.MakeHello());
  const Result<uint8_t> agreed = high.OnHello(hello);
  ASSERT_FALSE(agreed.ok());
  EXPECT_EQ(agreed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(high.state(), proto::VersionHandshake::State::kRejected);

  // The reject names the refusing side's span and ends the peer's session.
  const proto::handshake_wire::Reject reject = ShipOverWire(high.MakeReject());
  EXPECT_EQ(reject.version_min, 7);
  EXPECT_EQ(reject.version_max, 9);
  low.OnReject(reject);
  EXPECT_EQ(low.state(), proto::VersionHandshake::State::kRejected);
}

// -- Snapshot container (proto/snapshot.h) ----------------------------------

TEST(SnapshotContainerTest, RoundTripsSectionsInOrder) {
  proto::SnapshotWriter w;
  ASSERT_TRUE(w.AddSection("alpha", {1, 2, 3}).ok());
  ASSERT_TRUE(w.AddSection("beta", {}).ok());  // Empty bodies are legal.
  ASSERT_TRUE(w.AddSection("gamma", std::vector<uint8_t>(100, 0xAB)).ok());
  const std::vector<uint8_t> archive = w.Finish();

  Result<proto::SnapshotReader> r = proto::SnapshotReader::Parse(archive);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->version(), wire::kWireVersion);
  EXPECT_EQ(r->section_names(),
            (std::vector<std::string>{"alpha", "beta", "gamma"}));
  ASSERT_NE(r->section("alpha"), nullptr);
  EXPECT_EQ(*r->section("alpha"), (std::vector<uint8_t>{1, 2, 3}));
  ASSERT_NE(r->section("beta"), nullptr);
  EXPECT_TRUE(r->section("beta")->empty());
  ASSERT_NE(r->section("gamma"), nullptr);
  EXPECT_EQ(r->section("gamma")->size(), 100u);
  EXPECT_EQ(r->section("missing"), nullptr);
}

TEST(SnapshotContainerTest, DuplicateSectionNameRejects) {
  proto::SnapshotWriter w;
  ASSERT_TRUE(w.AddSection("alpha", {1}).ok());
  EXPECT_FALSE(w.AddSection("alpha", {2}).ok());
}

TEST(SnapshotContainerTest, TruncationAtEveryByteOffsetRejects) {
  proto::SnapshotWriter w;
  ASSERT_TRUE(w.AddSection("alpha", {1, 2, 3}).ok());
  ASSERT_TRUE(w.AddSection("beta", {4}).ok());
  const std::vector<uint8_t> archive = w.Finish();
  for (size_t len = 0; len < archive.size(); ++len) {
    EXPECT_FALSE(proto::SnapshotReader::Parse(archive.data(), len).ok())
        << "prefix of " << len << " bytes parsed";
  }
  EXPECT_TRUE(proto::SnapshotReader::Parse(archive).ok());
}

TEST(SnapshotContainerTest, SectionCorruptionRejects) {
  proto::SnapshotWriter w;
  ASSERT_TRUE(w.AddSection("alpha", {1, 2, 3, 4, 5}).ok());
  std::vector<uint8_t> archive = w.Finish();
  // Flip a bit in the last section-body byte (5 lives right before the CRC).
  const size_t body_byte = archive.size() - 5;
  archive[body_byte] ^= 0x10;
  const Result<proto::SnapshotReader> r = proto::SnapshotReader::Parse(archive);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("CRC"), std::string::npos)
      << r.status().ToString();
  archive[body_byte] ^= 0x10;
  EXPECT_TRUE(proto::SnapshotReader::Parse(archive).ok());
}

TEST(SnapshotContainerTest, BadMagicRejects) {
  proto::SnapshotWriter w;
  std::vector<uint8_t> archive = w.Finish();
  archive[0] = 'X';
  EXPECT_FALSE(proto::SnapshotReader::Parse(archive).ok());
}

TEST(SnapshotContainerTest, VersionSpanNegotiatesOrRejects) {
  proto::SnapshotWriter w(proto::VersionRange{5, 9});
  const std::vector<uint8_t> archive = w.Finish();

  // A reader that only speaks version 1 refuses the archive gracefully.
  const Result<proto::SnapshotReader> refused =
      proto::SnapshotReader::Parse(archive, proto::VersionRange{1, 1});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  // A reader spanning the writer agrees on the highest common version.
  const Result<proto::SnapshotReader> agreed =
      proto::SnapshotReader::Parse(archive, proto::VersionRange{1, 7});
  ASSERT_TRUE(agreed.ok()) << agreed.status().ToString();
  EXPECT_EQ(agreed->version(), 7);
}

TEST(SnapshotCodecTest, ManifestRoundTrips) {
  const std::map<std::string, std::string> kv{
      {"protocol", "elink"}, {"seed", "42"}, {"disable", ""}};
  std::vector<uint8_t> body = proto::EncodeManifestSection(kv);
  const Result<std::map<std::string, std::string>> back =
      proto::DecodeManifestSection(body);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, kv);

  // Truncated and padded bodies both reject.
  std::vector<uint8_t> cut = body;
  cut.pop_back();
  EXPECT_FALSE(proto::DecodeManifestSection(cut).ok());
  body.push_back(0x00);
  EXPECT_FALSE(proto::DecodeManifestSection(body).ok());
}

TEST(SnapshotCodecTest, HorizonRoundTrips) {
  proto::HorizonImage h;
  h.events = 123456789;
  h.now = 9876.5;
  const Result<proto::HorizonImage> back =
      proto::DecodeHorizonSection(proto::EncodeHorizonSection(h));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->events, h.events);
  EXPECT_EQ(back->now, h.now);
}

TEST(SnapshotCodecTest, StatsRoundTrips) {
  MessageStats stats;
  stats.Record("expand", 4, 37);
  stats.Record("expand", 1, 21);
  stats.Record("ack1", 1, 19);
  stats.RecordDropped("expand", 2, 29);
  stats.RecordDecodeError("ack1");

  const std::vector<uint8_t> body = proto::EncodeStatsSection(stats);
  const Result<proto::StatsImage> img = proto::DecodeStatsSection(body);
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  EXPECT_EQ(img->total_sends, stats.total_sends());
  EXPECT_EQ(img->total_units, stats.total_units());
  EXPECT_EQ(img->total_bytes, 77u);
  EXPECT_EQ(img->dropped_sends, 1u);
  EXPECT_EQ(img->dropped_bytes, 29u);
  EXPECT_EQ(img->decode_errors, 1u);
  ASSERT_EQ(img->categories.size(), 2u);  // Sorted by category name.
  EXPECT_EQ(img->categories[0].category, "ack1");
  EXPECT_EQ(img->categories[0].decode_errors, 1u);
  EXPECT_EQ(img->categories[1].category, "expand");
  EXPECT_EQ(img->categories[1].bytes, 58u);
  EXPECT_EQ(img->categories[1].dropped_bytes, 29u);
}

SensorDataset Terrain(int n) {
  TerrainConfig cfg;
  cfg.num_nodes = n;
  cfg.radio_range_fraction = 0.1;
  cfg.seed = 9;
  return std::move(MakeTerrainDataset(cfg)).value();
}

TEST(TruncationInjectionTest, ElinkCountsErrorsAndStaysValid) {
  const SensorDataset ds = Terrain(120);
  ElinkConfig cfg;
  cfg.delta = 0.25 * FeatureDiameter(ds);
  cfg.seed = 7;
  cfg.fault.truncate_probability = 0.3;
  Result<ElinkResult> r = RunElink(ds, cfg, ElinkMode::kImplicit);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().stats.decode_errors(), 0u);
  // Every node still ends up with a cluster assignment (worst case its own
  // singleton), and truncation never crashes a handler.
  for (int root : r.value().clustering.root_of) EXPECT_GE(root, 0);
}

TEST(TruncationInjectionTest, MaintenanceCountsErrorsAndSurvives) {
  const SensorDataset ds = Terrain(100);
  const double delta = 0.25 * FeatureDiameter(ds);
  ElinkConfig cfg;
  cfg.delta = delta;
  cfg.seed = 7;
  Result<ElinkResult> clean = RunElink(ds, cfg, ElinkMode::kImplicit);
  ASSERT_TRUE(clean.ok());

  MaintenanceConfig mcfg;
  mcfg.delta = delta;
  mcfg.slack = 0.05 * delta;
  FaultPlan fault;
  fault.truncate_probability = 0.6;
  DistributedMaintenance maint(ds.topology, clean.value().clustering,
                               ds.features, ds.metric, mcfg,
                               /*synchronous=*/true, /*seed=*/11, fault);
  // Large jumps defeat the A1-A3 absorption checks and force fetch/push/
  // probe traffic, all of it exposed to in-flight truncation.
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const int node = static_cast<int>(rng.UniformInt(100));
    Feature f = ds.features[node];
    for (double& x : f) x += rng.Uniform(2.0, 4.0) * delta;
    maint.ApplyUpdate(node, f);
  }
  EXPECT_GT(maint.stats().decode_errors(), 0u);
  // Every node still names a live root; no handler crashed on short frames.
  const Clustering now = maint.CurrentClustering();
  for (int root : now.root_of) EXPECT_GE(root, 0);
}

TEST(TruncationInjectionTest, RangeQueryCountsErrorsAndFinishes) {
  const SensorDataset ds = Terrain(120);
  const double delta = 0.25 * FeatureDiameter(ds);
  ElinkConfig cfg;
  cfg.delta = delta;
  cfg.seed = 7;
  Result<ElinkResult> clean = RunElink(ds, cfg, ElinkMode::kImplicit);
  ASSERT_TRUE(clean.ok());
  const Clustering& clustering = clean.value().clustering;
  const std::vector<int> tree =
      BuildClusterTrees(clustering, ds.topology.adjacency);
  const ClusterIndex index =
      ClusterIndex::Build(clustering, tree, ds.features, *ds.metric);
  const Backbone backbone =
      Backbone::Build(clustering, ds.topology.adjacency, nullptr,
                      &ds.features, ds.metric.get());

  DistributedRangeQuery::ProtocolOptions options;
  options.fault.truncate_probability = 0.5;
  options.node_deadline = 400.0;
  options.query_deadline = 4000.0;
  DistributedRangeQuery protocol(ds.topology, clustering, index, backbone,
                                 ds.features, ds.metric, options);
  Rng rng(17);
  uint64_t decode_errors = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const Feature q = ds.features[rng.UniformInt(120)];
    Result<DistributedQueryOutcome> out =
        protocol.Run(static_cast<int>(rng.UniformInt(120)), q, 0.7 * delta);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    decode_errors += out.value().stats.decode_errors();
  }
  EXPECT_GT(decode_errors, 0u);
}

// -- RunHarness::set_trace ordering -----------------------------------------

namespace tracewire {
/// Minimal schema for the trace-ordering protocol below.
struct Ping {
  static constexpr int kType = 1;
  static constexpr const char* kCategory = "trace_ping";
  long long ttl = 0;
  template <class V>
  void VisitFields(V& v) {
    v.I64(ttl);
  }
  bool operator==(const Ping&) const = default;
};
}  // namespace tracewire

/// Every node pings all neighbors at install; receivers ping back while the
/// ttl lasts.  Over ReliableChannel with lossy links this produces exactly
/// the traffic mix the trace hook documents: data frames, transport acks,
/// retransmissions, and duplicate deliveries.
class TracePingNode : public proto::ProtocolNode {
 public:
  explicit TracePingNode(const ReliableChannel::Config& rel) {
    EnableReliable(rel);
    OnMsg<tracewire::Ping>([this](int from, const tracewire::Ping& m) {
      if (m.ttl > 0) {
        tracewire::Ping reply;
        reply.ttl = m.ttl - 1;
        Send(from, reply);
      }
    });
  }

 protected:
  // The initial pings go out on a time-0 timer rather than from OnReady:
  // during install the neighbors are not all in place yet.
  void OnReady() override { network()->SetTimer(id(), 0.0, /*timer_id=*/1); }

  void OnProtocolTimer(int timer_id) override {
    ELINK_CHECK(timer_id == 1);
    tracewire::Ping m;
    m.ttl = 2;
    for (int nb : network()->neighbors(id())) Send(nb, m);
  }
};

struct TracedFrame {
  double now;
  int from;
  int to;
  int type;
  bool ack;
  long long seq;
  bool operator==(const TracedFrame&) const = default;
};

std::vector<TracedFrame> RunTracedPing(uint64_t seed) {
  const SensorDataset ds = Terrain(36);
  proto::RunHarness::Options hopt;
  hopt.net.seed = seed;
  hopt.net.fault.drop_probability = 0.25;
  proto::RunHarness harness(ds.topology, hopt);
  std::vector<TracedFrame> trace;
  harness.set_trace([&](double now, int from, int to, const Message& msg) {
    trace.push_back({now, from, to, msg.type, msg.rel_ack, msg.rel_seq});
  });
  ReliableChannel::Config rel;
  rel.rto = 6.0;
  rel.max_retries = 4;
  harness.InstallNodes(
      [&](int) { return std::make_unique<TracePingNode>(rel); });
  harness.Run();
  return trace;
}

TEST(RunHarnessTraceTest, DeterministicOrderWithAcksAndDuplicates) {
  const std::vector<TracedFrame> trace = RunTracedPing(/*seed=*/5);
  ASSERT_FALSE(trace.empty());

  // Delivery order is the event queue's deterministic (time, seq) order:
  // timestamps never run backwards across the whole trace, acks and
  // duplicates included.
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].now, trace[i - 1].now)
        << "trace order regressed at entry " << i;
  }

  // The raw hook sees the transport plane: acks for delivered data frames
  // and, with lossy links, duplicate deliveries of retransmitted frames.
  size_t acks = 0;
  std::map<std::tuple<int, int, long long>, int> data_copies;
  for (const TracedFrame& f : trace) {
    if (f.ack) {
      ++acks;
    } else if (f.seq >= 0) {
      ++data_copies[{f.from, f.to, f.seq}];
    }
  }
  size_t duplicates = 0;
  for (const auto& [key, copies] : data_copies) {
    if (copies > 1) duplicates += static_cast<size_t>(copies - 1);
  }
  EXPECT_GT(acks, 0u);
  EXPECT_GT(duplicates, 0u) << "expected lost acks to force duplicate "
                               "deliveries under 25% loss";

  // Same seed, same trace — byte for byte.
  EXPECT_EQ(trace, RunTracedPing(/*seed=*/5));
}

// -- RunHarness watchdog boundary behavior -----------------------------------
//
// The quiet-period watchdog compares an activity *counter* snapshot, not
// timestamps, so events landing exactly on the expiry instant are resolved
// by the event queue's (time, insertion) order: protocol events scheduled
// before Run() beat the watchdog tick, the horizon no-op (armed after the
// watchdog inside Run()) never does.  These tests pin all four boundaries.

class WatchdogProbeNode : public proto::ProtocolNode {
 public:
  explicit WatchdogProbeNode(std::function<void()> on_timer = nullptr)
      : on_timer_(std::move(on_timer)) {}

 protected:
  void OnProtocolTimer(int) override {
    if (on_timer_) on_timer_();
  }

 private:
  std::function<void()> on_timer_;
};

TEST(RunHarnessWatchdogTest, ActivityTieAtExpiryRearmsInsteadOfFiring) {
  proto::RunHarness::Options hopt;
  hopt.quiet_timeout = 10.0;
  proto::RunHarness harness(MakeGridTopology(1, 2), hopt);
  harness.InstallNodes(
      [](int) { return std::make_unique<WatchdogProbeNode>(); });
  // A protocol timer at exactly the watchdog expiry.  It was scheduled
  // before Run() armed the watchdog, so the (time, insertion) tie-break
  // delivers it first: the tick sees fresh activity and re-arms instead of
  // declaring a false timeout at t=10.
  harness.net().SetTimer(0, 10.0, /*timer_id=*/1);
  const proto::RunHarness::Report report = harness.Run();
  EXPECT_TRUE(report.timed_out);  // The 10..20 window really was quiet.
  EXPECT_DOUBLE_EQ(report.end_time, 20.0)
      << "first tick must re-arm, not fire";
}

TEST(RunHarnessWatchdogTest, DoneAtExpiryTieStandsDownWithoutTimeout) {
  proto::RunHarness::Options hopt;
  hopt.quiet_timeout = 10.0;
  proto::RunHarness harness(MakeGridTopology(1, 2), hopt);
  bool done = false;
  harness.InstallNodes([&](int) {
    return std::make_unique<WatchdogProbeNode>([&done] { done = true; });
  });
  harness.set_done([&done] { return done; });
  // Completion lands on the expiry instant; the watchdog must consult done()
  // before comparing activity and stand down entirely (no re-arm: the run
  // ends at 10, not 20).
  harness.net().SetTimer(0, 10.0, /*timer_id=*/1);
  const proto::RunHarness::Report report = harness.Run();
  EXPECT_FALSE(report.timed_out);
  EXPECT_DOUBLE_EQ(report.end_time, 10.0);
}

TEST(RunHarnessWatchdogTest, HorizonNoOpAtExpiryIsNotActivity) {
  proto::RunHarness::Options hopt;
  hopt.quiet_timeout = 10.0;
  hopt.run_horizon = 10.0;  // Same instant as the watchdog expiry.
  proto::RunHarness harness(MakeGridTopology(1, 2), hopt);
  harness.InstallNodes(
      [](int) { return std::make_unique<WatchdogProbeNode>(); });
  const proto::RunHarness::Report report = harness.Run();
  // The horizon's clock-keeping no-op shares the expiry instant but touches
  // no handler: the run is genuinely quiet and must time out.
  EXPECT_TRUE(report.timed_out);
  EXPECT_DOUBLE_EQ(report.end_time, 10.0);
}

TEST(RunHarnessWatchdogTest, ReArmIsFromExpiryNotFromLastActivity) {
  proto::RunHarness::Options hopt;
  hopt.quiet_timeout = 10.0;
  proto::RunHarness harness(MakeGridTopology(1, 2), hopt);
  obs::RunTelemetry tele;
  harness.set_observer(&tele);
  harness.InstallNodes(
      [](int) { return std::make_unique<WatchdogProbeNode>(); });
  // Activity at t=9.5, inside the first window.  The tick at t=10 re-arms
  // for a full window from the *expiry* (next tick t=20), not from the last
  // activity (t=19.5): the ELink watchdog semantics the harness inherited.
  harness.net().SetTimer(0, 9.5, /*timer_id=*/1);
  const proto::RunHarness::Report report = harness.Run();
  EXPECT_TRUE(report.timed_out);
  EXPECT_DOUBLE_EQ(report.end_time, 20.0);
  EXPECT_EQ(tele.metrics().counter("harness.watchdog_arms"), 2u);
  EXPECT_EQ(tele.metrics().counter("harness.watchdog_fires"), 1u);
}

}  // namespace
}  // namespace elink
