// Tests for src/baselines: spectral clustering (NJW + smallest-k search),
// spanning-forest, hierarchical, the exact optimum, and the centralized cost
// models — including cross-algorithm quality relations on small instances.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/centralized_cost.h"
#include "baselines/exact.h"
#include "baselines/hierarchical.h"
#include "baselines/kmedoids.h"
#include "baselines/spanning_forest.h"
#include "baselines/spectral.h"
#include "cluster/elink.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "data/terrain.h"
#include "linalg/eigen.h"
#include "sim/topology.h"

namespace elink {
namespace {

WeightedEuclidean OneDim() { return WeightedEuclidean::Euclidean(1); }

// Two 1-D feature bands on a path graph: the canonical 2-cluster instance.
struct BandFixture {
  Topology topology = MakeGridTopology(1, 6);
  std::vector<Feature> features = {{0.0}, {1.0}, {2.0},
                                   {50.0}, {51.0}, {52.0}};
  double delta = 5.0;
};

TEST(SpectralTest, FindsTwoBands) {
  BandFixture fx;
  SpectralConfig cfg;
  cfg.delta = fx.delta;
  Result<SpectralResult> r = SpectralDeltaClustering(
      fx.topology.adjacency, fx.features, OneDim(), cfg);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().clustering.num_clusters(), 2);
  EXPECT_TRUE(ValidateDeltaClustering(r.value().clustering,
                                      fx.topology.adjacency, fx.features,
                                      OneDim(), fx.delta)
                  .ok());
}

TEST(SpectralTest, SingleClusterWhenDeltaLarge) {
  BandFixture fx;
  SpectralConfig cfg;
  cfg.delta = 100.0;
  Result<SpectralResult> r = SpectralDeltaClustering(
      fx.topology.adjacency, fx.features, OneDim(), cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().clustering.num_clusters(), 1);
  EXPECT_EQ(r.value().chosen_k, 1);
}

TEST(SpectralTest, SingletonsWhenDeltaZeroAndFeaturesDistinct) {
  BandFixture fx;
  SpectralConfig cfg;
  cfg.delta = 0.0;
  Result<SpectralResult> r = SpectralDeltaClustering(
      fx.topology.adjacency, fx.features, OneDim(), cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().clustering.num_clusters(), 6);
}

TEST(SpectralTest, PaperLiteralAffinityStillValid) {
  BandFixture fx;
  SpectralConfig cfg;
  cfg.delta = fx.delta;
  cfg.paper_literal_affinity = true;
  Result<SpectralResult> r = SpectralDeltaClustering(
      fx.topology.adjacency, fx.features, OneDim(), cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ValidateDeltaClustering(r.value().clustering,
                                      fx.topology.adjacency, fx.features,
                                      OneDim(), fx.delta)
                  .ok());
}

TEST(SpectralTest, SubspaceIterationMatchesJacobiOnSmallGraph) {
  // Cross-check the sparse eigenvector path against the dense Jacobi solver
  // on the same normalized affinity operator.
  Rng rng(3);
  Result<Topology> t = MakeRandomTopology(24, 5.0, 2.0, &rng);
  ASSERT_TRUE(t.ok());
  std::vector<Feature> f;
  for (int i = 0; i < 24; ++i) f.push_back({rng.Uniform(0, 1)});
  WeightedEuclidean metric = OneDim();
  auto affinity = [&](int i, int j) {
    const double d = metric.Distance(f[i], f[j]);
    return std::exp(-d * d / 2.0);
  };
  const int n = 24;
  // Dense operator I + D^-1/2 A D^-1/2.
  std::vector<double> degree(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j : t.value().adjacency[i]) degree[i] += affinity(i, j);
    if (degree[i] <= 0) degree[i] = 1.0;
  }
  Matrix dense = Matrix::Identity(n);
  for (int i = 0; i < n; ++i) {
    for (int j : t.value().adjacency[i]) {
      dense(i, j) += affinity(i, j) / std::sqrt(degree[i] * degree[j]);
    }
  }
  Result<EigenDecomposition> jac = SymmetricEigen(dense);
  ASSERT_TRUE(jac.ok());
  Rng rng2(5);
  Result<Matrix> sub = TopEigenvectorsOfNormalizedAffinity(
      t.value().adjacency, affinity, 4, &rng2, 600);
  ASSERT_TRUE(sub.ok());
  // Rayleigh quotients of the subspace columns match the top-4 eigenvalues.
  for (int c = 0; c < 4; ++c) {
    Vector v(n);
    for (int i = 0; i < n; ++i) v[i] = sub.value()(i, c);
    const Vector av = dense.Multiply(v);
    const double rayleigh = Dot(v, av) / Dot(v, v);
    EXPECT_NEAR(rayleigh, jac.value().values[c], 1e-4) << "column " << c;
  }
}

// -- Spanning forest -----------------------------------------------------------

TEST(SpanningForestTest, FindsTwoBands) {
  BandFixture fx;
  Result<SpanningForestResult> r = SpanningForestClustering(
      fx.topology.adjacency, fx.features, OneDim(), fx.delta);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ValidateDeltaClustering(r.value().clustering,
                                      fx.topology.adjacency, fx.features,
                                      OneDim(), fx.delta)
                  .ok());
  EXPECT_EQ(r.value().clustering.num_clusters(), 2);
}

TEST(SpanningForestTest, ForestParentsRespectPartialOrder) {
  BandFixture fx;
  Result<SpanningForestResult> r = SpanningForestClustering(
      fx.topology.adjacency, fx.features, OneDim(), fx.delta);
  ASSERT_TRUE(r.ok());
  for (int i = 0; i < 6; ++i) {
    EXPECT_LE(r.value().forest_parent[i], i);  // Parent has smaller id.
  }
}

TEST(SpanningForestTest, LinearMessageComplexity) {
  Rng rng(11);
  std::vector<double> per_node;
  for (int n : {100, 400}) {
    SyntheticConfig cfg;
    cfg.num_nodes = n;
    cfg.seed = 2000 + n;
    Result<SensorDataset> ds = MakeSyntheticDataset(cfg);
    ASSERT_TRUE(ds.ok());
    const double delta = 0.3 * FeatureDiameter(ds.value());
    Result<SpanningForestResult> r = SpanningForestClustering(
        ds.value().topology.adjacency, ds.value().features,
        *ds.value().metric, delta);
    ASSERT_TRUE(r.ok());
    per_node.push_back(static_cast<double>(r.value().stats.total_units()) / n);
  }
  EXPECT_LT(per_node.back(), per_node.front() * 2.5);
}

TEST(SpanningForestTest, ValidOnTerrainSweep) {
  TerrainConfig cfg;
  cfg.num_nodes = 250;
  cfg.radio_range_fraction = 0.1;
  Result<SensorDataset> ds = MakeTerrainDataset(cfg);
  ASSERT_TRUE(ds.ok());
  for (double frac : {0.1, 0.3, 0.6}) {
    const double delta = frac * FeatureDiameter(ds.value());
    Result<SpanningForestResult> r = SpanningForestClustering(
        ds.value().topology.adjacency, ds.value().features,
        *ds.value().metric, delta);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(ValidateDeltaClustering(
                    r.value().clustering, ds.value().topology.adjacency,
                    ds.value().features, *ds.value().metric, delta)
                    .ok())
        << "delta fraction " << frac;
  }
}

// -- Hierarchical ----------------------------------------------------------------

TEST(HierarchicalTest, FindsTwoBands) {
  BandFixture fx;
  Result<HierarchicalResult> r = HierarchicalClustering(
      fx.topology.adjacency, fx.features, OneDim(), fx.delta);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().clustering.num_clusters(), 2);
  EXPECT_TRUE(ValidateDeltaClustering(r.value().clustering,
                                      fx.topology.adjacency, fx.features,
                                      OneDim(), fx.delta)
                  .ok());
}

TEST(HierarchicalTest, MergesEverythingUnderLargeDelta) {
  BandFixture fx;
  Result<HierarchicalResult> r = HierarchicalClustering(
      fx.topology.adjacency, fx.features, OneDim(), 1000.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().clustering.num_clusters(), 1);
  EXPECT_EQ(r.value().merges, 5);
}

TEST(HierarchicalTest, NoMergesUnderZeroDeltaWithDistinctFeatures) {
  BandFixture fx;
  Result<HierarchicalResult> r = HierarchicalClustering(
      fx.topology.adjacency, fx.features, OneDim(), 0.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().clustering.num_clusters(), 6);
  EXPECT_EQ(r.value().merges, 0);
}

TEST(HierarchicalTest, ValidOnRandomSweep) {
  SyntheticConfig cfg;
  cfg.num_nodes = 120;
  cfg.seed = 71;
  Result<SensorDataset> ds = MakeSyntheticDataset(cfg);
  ASSERT_TRUE(ds.ok());
  for (double frac : {0.15, 0.35, 0.6}) {
    const double delta = frac * FeatureDiameter(ds.value());
    Result<HierarchicalResult> r = HierarchicalClustering(
        ds.value().topology.adjacency, ds.value().features,
        *ds.value().metric, delta);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(ValidateDeltaClustering(
                    r.value().clustering, ds.value().topology.adjacency,
                    ds.value().features, *ds.value().metric, delta)
                    .ok());
  }
}

// -- Exact optimum ---------------------------------------------------------------

TEST(ExactTest, TwoBandsOptimal) {
  BandFixture fx;
  Result<Clustering> r = ExactOptimalClustering(fx.topology.adjacency,
                                                fx.features, OneDim(),
                                                fx.delta);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_clusters(), 2);
  EXPECT_TRUE(ValidateDeltaClustering(r.value(), fx.topology.adjacency,
                                      fx.features, OneDim(), fx.delta)
                  .ok());
}

TEST(ExactTest, ConnectivityForcesExtraClusters) {
  // Path 0-1-2 with features 0, 100, 0 and delta 1: nodes 0 and 2 are
  // compatible but not connected without 1 -> optimum is 3, not 2.
  Topology t = MakeGridTopology(1, 3);
  std::vector<Feature> f = {{0.0}, {100.0}, {0.0}};
  Result<Clustering> r =
      ExactOptimalClustering(t.adjacency, f, OneDim(), 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_clusters(), 3);
}

TEST(ExactTest, PaperFigure3Example) {
  // Fig. 3: 5 nodes, delta = 5, minimum clustering has 2 clusters.
  // Distances: d(c,e) = 6 and d(c,d) = 6 exceed delta; everything else <= 5.
  // Communication graph: a-b, a-c, b-c, b-d, c-e, d-e (as drawn).
  Result<TableMetric> metric = TableMetric::Create({
      {0, 2, 4, 4, 5},   // a
      {2, 0, 3, 5, 4},   // b
      {4, 3, 0, 6, 6},   // c  (d(c,d)=6, d(c,e)=6)
      {4, 5, 6, 0, 3},   // d
      {5, 4, 6, 3, 0},   // e
  });
  ASSERT_TRUE(metric.ok());
  AdjacencyList adj = {{1, 2}, {0, 2, 3}, {0, 1, 4}, {1, 4}, {2, 3}};
  std::vector<Feature> ids = {{0.0}, {1.0}, {2.0}, {3.0}, {4.0}};
  Result<Clustering> r =
      ExactOptimalClustering(adj, ids, metric.value(), 5.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_clusters(), 2);
  // c cannot share a cluster with d or e.
  EXPECT_FALSE(r.value().SameCluster(2, 3));
  EXPECT_FALSE(r.value().SameCluster(2, 4));
}

TEST(ExactTest, RejectsLargeInstance) {
  Topology t = MakeGridTopology(4, 4);
  std::vector<Feature> f(16, Feature{0.0});
  EXPECT_FALSE(
      ExactOptimalClustering(t.adjacency, f, OneDim(), 1.0, 14).ok());
}

TEST(ExactTest, LowerBoundsAllAlgorithms) {
  Rng rng(91);
  for (int trial = 0; trial < 4; ++trial) {
    Result<Topology> t = MakeRandomTopology(10, 3.0, 1.4, &rng);
    ASSERT_TRUE(t.ok());
    std::vector<Feature> f;
    for (int i = 0; i < 10; ++i) f.push_back({rng.Uniform(0, 8)});
    const double delta = 3.0;
    Result<Clustering> opt =
        ExactOptimalClustering(t.value().adjacency, f, OneDim(), delta);
    ASSERT_TRUE(opt.ok());
    Result<SpanningForestResult> sf =
        SpanningForestClustering(t.value().adjacency, f, OneDim(), delta);
    ASSERT_TRUE(sf.ok());
    EXPECT_GE(sf.value().clustering.num_clusters(),
              opt.value().num_clusters());
    Result<HierarchicalResult> hc =
        HierarchicalClustering(t.value().adjacency, f, OneDim(), delta);
    ASSERT_TRUE(hc.ok());
    EXPECT_GE(hc.value().clustering.num_clusters(),
              opt.value().num_clusters());
    SpectralConfig scfg;
    scfg.delta = delta;
    Result<SpectralResult> sp =
        SpectralDeltaClustering(t.value().adjacency, f, OneDim(), scfg);
    ASSERT_TRUE(sp.ok());
    EXPECT_GE(sp.value().clustering.num_clusters(),
              opt.value().num_clusters());
  }
}

// -- Centralized cost models -----------------------------------------------------

TEST(CentralizedCostTest, BaseStationNearCenter) {
  Topology t = MakeGridTopology(5, 5);
  EXPECT_EQ(PickBaseStation(t), 12);  // Center of a 5x5 grid.
}

TEST(CentralizedCostTest, RawUpdaterChargesHops) {
  Topology t = MakeGridTopology(1, 5);
  CentralizedRawUpdater raw(t, /*base_station=*/0);
  raw.Measurement(4);  // 4 hops away.
  raw.Measurement(0);  // At the base: free.
  EXPECT_EQ(raw.stats().total_units(), 4u);
}

TEST(CentralizedCostTest, ModelUpdaterRespectsSlack) {
  Topology t = MakeGridTopology(1, 3);
  auto metric = std::make_shared<WeightedEuclidean>(OneDim());
  CentralizedModelUpdater upd(t, 0, metric, /*slack=*/1.0,
                              {{0.0}, {0.0}, {0.0}});
  EXPECT_FALSE(upd.UpdateFeature(2, {0.5}));  // Within slack.
  EXPECT_EQ(upd.stats().total_units(), 0u);
  EXPECT_TRUE(upd.UpdateFeature(2, {2.0}));  // Violation: 2 hops x 1 coeff.
  EXPECT_EQ(upd.stats().total_units(), 2u);
  // The sent value becomes the new reference.
  EXPECT_FALSE(upd.UpdateFeature(2, {2.5}));
  EXPECT_DOUBLE_EQ(upd.base_station_view()[2][0], 2.0);
}


// -- k-medoids (Section 9 alternative) ------------------------------------------

TEST(KMedoidsTest, FindsTwoBands) {
  BandFixture fx;
  KMedoidsConfig cfg;
  cfg.delta = fx.delta;
  Result<KMedoidsResult> r = KMedoidsDeltaClustering(
      fx.topology.adjacency, fx.features, OneDim(), cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().clustering.num_clusters(), 2);
  EXPECT_TRUE(ValidateDeltaClustering(r.value().clustering,
                                      fx.topology.adjacency, fx.features,
                                      OneDim(), fx.delta)
                  .ok());
}

TEST(KMedoidsTest, HypotheticalDistributedCostIsHuge) {
  // Section 9's argument: every PAM iteration broadcasts all medoids
  // network-wide, so the distributed cost dwarfs ELink's O(N).
  BandFixture fx;
  KMedoidsConfig cfg;
  cfg.delta = fx.delta;
  Result<KMedoidsResult> r = KMedoidsDeltaClustering(
      fx.topology.adjacency, fx.features, OneDim(), cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().total_iterations, 0);
  EXPECT_GT(r.value().hypothetical_stats.total_units(),
            static_cast<uint64_t>(fx.topology.num_nodes()));
}

TEST(KMedoidsTest, ValidAcrossDeltaSweep) {
  SyntheticConfig cfg;
  cfg.num_nodes = 100;
  cfg.seed = 97;
  Result<SensorDataset> ds = MakeSyntheticDataset(cfg);
  ASSERT_TRUE(ds.ok());
  for (double frac : {0.2, 0.4}) {
    const double delta = frac * FeatureDiameter(ds.value());
    KMedoidsConfig kcfg;
    kcfg.delta = delta;
    Result<KMedoidsResult> r = KMedoidsDeltaClustering(
        ds.value().topology.adjacency, ds.value().features,
        *ds.value().metric, kcfg);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(ValidateDeltaClustering(
                    r.value().clustering, ds.value().topology.adjacency,
                    ds.value().features, *ds.value().metric, delta)
                    .ok());
  }
}

}  // namespace
}  // namespace elink
