// Tests for src/linalg: matrix ops, LU/Cholesky solvers, Jacobi
// eigendecomposition, k-means.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/eigen.h"
#include "linalg/kmeans.h"
#include "linalg/matrix.h"
#include "linalg/solve.h"

namespace elink {
namespace {

TEST(MatrixTest, IdentityAndIndexing) {
  Matrix m = Matrix::Identity(3);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  m(0, 1) = 5.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 5.0);
}

TEST(MatrixTest, MultiplyMatchesHandComputation) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MatrixVectorProduct) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Vector v = {1, 0, -1};
  Vector r = a.Multiply(v);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], -2.0);
  EXPECT_DOUBLE_EQ(r[1], -2.0);
}

TEST(MatrixTest, TransposeAddSubtractScale) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix t = a.Transpose();
  EXPECT_DOUBLE_EQ(t(0, 1), 3.0);
  Matrix s = a.Add(a).Subtract(a).Scale(2.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 8.0);
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 4.0);
}

TEST(MatrixTest, SymmetryCheck) {
  Matrix sym = Matrix::FromRows({{1, 2}, {2, 1}});
  Matrix asym = Matrix::FromRows({{1, 2}, {3, 1}});
  EXPECT_TRUE(sym.IsSymmetric());
  EXPECT_FALSE(asym.IsSymmetric());
  EXPECT_FALSE(Matrix(2, 3).IsSymmetric());
}

TEST(VectorOpsTest, DotNormAddSubtractScaleOuter) {
  Vector a = {1, 2, 2};
  Vector b = {2, 0, 1};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(Norm(a), 3.0);
  EXPECT_DOUBLE_EQ(Add(a, b)[0], 3.0);
  EXPECT_DOUBLE_EQ(Subtract(a, b)[2], 1.0);
  EXPECT_DOUBLE_EQ(Scale(a, 0.5)[1], 1.0);
  Matrix o = Outer(a, b);
  EXPECT_DOUBLE_EQ(o(2, 0), 4.0);
}

TEST(SolveTest, LuSolvesKnownSystem) {
  Matrix a = Matrix::FromRows({{2, 1}, {1, 3}});
  Vector b = {3, 5};
  Result<Vector> x = SolveLu(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 0.8, 1e-12);
  EXPECT_NEAR(x.value()[1], 1.4, 1e-12);
}

TEST(SolveTest, LuRequiresPivoting) {
  // Leading zero forces a row swap.
  Matrix a = Matrix::FromRows({{0, 1}, {1, 0}});
  Vector b = {2, 3};
  Result<Vector> x = SolveLu(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 3.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 2.0, 1e-12);
}

TEST(SolveTest, LuRejectsSingular) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  Result<Vector> x = SolveLu(a, {1, 2});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SolveTest, LuRejectsBadShapes) {
  EXPECT_FALSE(SolveLu(Matrix(2, 3), {1, 2}).ok());
  EXPECT_FALSE(SolveLu(Matrix::Identity(2), {1, 2, 3}).ok());
}

TEST(SolveTest, InvertRoundTrips) {
  Rng rng(5);
  Matrix a(4, 4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) a(i, j) = rng.Uniform(-1, 1);
    a(i, i) += 4.0;  // Diagonal dominance keeps it well conditioned.
  }
  Result<Matrix> inv = Invert(a);
  ASSERT_TRUE(inv.ok());
  Matrix prod = a.Multiply(inv.value());
  EXPECT_LT(prod.Subtract(Matrix::Identity(4)).MaxAbs(), 1e-10);
}

TEST(SolveTest, CholeskySolvesSpdSystem) {
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  Result<Vector> x = SolveCholesky(a, {2, 1});
  ASSERT_TRUE(x.ok());
  // Verify A x = b.
  EXPECT_NEAR(4 * x.value()[0] + 2 * x.value()[1], 2.0, 1e-12);
  EXPECT_NEAR(2 * x.value()[0] + 3 * x.value()[1], 1.0, 1e-12);
}

TEST(SolveTest, CholeskyRejectsNonSpd) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});  // Indefinite.
  EXPECT_FALSE(CholeskyFactor(a).ok());
}

TEST(SolveTest, CholeskyFactorReconstructs) {
  Matrix a = Matrix::FromRows({{9, 3, 0}, {3, 5, 1}, {0, 1, 2}});
  Result<Matrix> l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  Matrix rebuilt = l.value().Multiply(l.value().Transpose());
  EXPECT_LT(rebuilt.Subtract(a).MaxAbs(), 1e-12);
}

TEST(SolveTest, NormalEquationsRecoverExactCoefficients) {
  // y = 2 x1 - 3 x2, noiseless: least squares must recover (2, -3).
  Rng rng(31);
  const int m = 50;
  Matrix x(2, m);
  Vector y(m);
  for (int t = 0; t < m; ++t) {
    x(0, t) = rng.Uniform(-1, 1);
    x(1, t) = rng.Uniform(-1, 1);
    y[t] = 2.0 * x(0, t) - 3.0 * x(1, t);
  }
  Result<Vector> alpha = SolveNormalEquations(x, y);
  ASSERT_TRUE(alpha.ok());
  EXPECT_NEAR(alpha.value()[0], 2.0, 1e-9);
  EXPECT_NEAR(alpha.value()[1], -3.0, 1e-9);
}

TEST(EigenTest, DiagonalMatrix) {
  Matrix a = Matrix::FromRows({{3, 0}, {0, 1}});
  Result<EigenDecomposition> e = SymmetricEigen(a);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value().values[0], 3.0, 1e-10);
  EXPECT_NEAR(e.value().values[1], 1.0, 1e-10);
}

TEST(EigenTest, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});
  Result<EigenDecomposition> e = SymmetricEigen(a);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value().values[0], 3.0, 1e-10);
  EXPECT_NEAR(e.value().values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  const double v0 = e.value().vectors(0, 0);
  const double v1 = e.value().vectors(1, 0);
  EXPECT_NEAR(std::fabs(v0), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(v0, v1, 1e-8);
}

TEST(EigenTest, ReconstructsRandomSymmetric) {
  Rng rng(41);
  const size_t n = 8;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      a(i, j) = rng.Uniform(-1, 1);
      a(j, i) = a(i, j);
    }
  }
  Result<EigenDecomposition> e = SymmetricEigen(a);
  ASSERT_TRUE(e.ok());
  // Rebuild A = V diag(w) V^T.
  Matrix vdw(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      vdw(i, j) = e.value().vectors(i, j) * e.value().values[j];
    }
  }
  Matrix rebuilt = vdw.Multiply(e.value().vectors.Transpose());
  EXPECT_LT(rebuilt.Subtract(a).MaxAbs(), 1e-8);
  // Eigenvalues sorted descending.
  for (size_t i = 0; i + 1 < n; ++i) {
    EXPECT_GE(e.value().values[i], e.value().values[i + 1]);
  }
}

TEST(EigenTest, VectorsAreOrthonormal) {
  Rng rng(43);
  const size_t n = 6;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      a(i, j) = rng.Uniform(-1, 1);
      a(j, i) = a(i, j);
    }
  }
  Result<EigenDecomposition> e = SymmetricEigen(a);
  ASSERT_TRUE(e.ok());
  Matrix vtv =
      e.value().vectors.Transpose().Multiply(e.value().vectors);
  EXPECT_LT(vtv.Subtract(Matrix::Identity(n)).MaxAbs(), 1e-8);
}

TEST(EigenTest, RejectsAsymmetric) {
  Matrix a = Matrix::FromRows({{1, 2}, {0, 1}});
  EXPECT_FALSE(SymmetricEigen(a).ok());
}

TEST(KMeansTest, SeparatesObviousClusters) {
  Rng rng(51);
  std::vector<Vector> points;
  for (int i = 0; i < 30; ++i) {
    points.push_back({rng.Normal(0.0, 0.1), rng.Normal(0.0, 0.1)});
  }
  for (int i = 0; i < 30; ++i) {
    points.push_back({rng.Normal(10.0, 0.1), rng.Normal(10.0, 0.1)});
  }
  Result<KMeansResult> r = KMeans(points, 2, &rng);
  ASSERT_TRUE(r.ok());
  // All of the first 30 points share a label, all of the last 30 the other.
  const int label_a = r.value().assignment[0];
  const int label_b = r.value().assignment[30];
  EXPECT_NE(label_a, label_b);
  for (int i = 0; i < 30; ++i) EXPECT_EQ(r.value().assignment[i], label_a);
  for (int i = 30; i < 60; ++i) EXPECT_EQ(r.value().assignment[i], label_b);
}

TEST(KMeansTest, KEqualsOneGivesCentroid) {
  Rng rng(53);
  std::vector<Vector> points = {{0, 0}, {2, 0}, {0, 2}, {2, 2}};
  Result<KMeansResult> r = KMeans(points, 1, &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().centers[0][0], 1.0, 1e-12);
  EXPECT_NEAR(r.value().centers[0][1], 1.0, 1e-12);
}

TEST(KMeansTest, RejectsBadK) {
  Rng rng(55);
  std::vector<Vector> points = {{0.0}, {1.0}};
  EXPECT_FALSE(KMeans(points, 0, &rng).ok());
  EXPECT_FALSE(KMeans(points, 3, &rng).ok());
}

TEST(KMeansTest, InertiaNonIncreasingInK) {
  Rng rng(57);
  std::vector<Vector> points;
  for (int i = 0; i < 40; ++i) {
    points.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  double prev = 1e300;
  for (int k = 1; k <= 5; ++k) {
    Result<KMeansResult> r = KMeans(points, k, &rng, 200, 8);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r.value().inertia, prev + 1e-9);
    prev = r.value().inertia;
  }
}

}  // namespace
}  // namespace elink
