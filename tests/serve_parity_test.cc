// Serve coherence under real concurrency: 100+ fuzzed scenarios in which
// client threads hammer a ServeFrontend while the maintenance protocol
// (with churn, faults, and feature updates) publishes state changes
// underneath them.
//
// Every published view is logged by its epoch signature (epochs are
// monotone per cluster, so signatures never recur across distinct states).
// After the threads join, every served answer — cache hit or miss — is
// checked against
//   (a) a fresh recomputation on the exact view it was served from,
//   (b) the exact linear-scan / BFS oracles over that view's live state,
//   (c) for cache hits, the requirement that the carried epoch vector was
//       current at serve time (a stale hit is the coherence failure).
// Failures print the scenario seed and the offending op for reproduction.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "check/invariants.h"
#include "check/scenario.h"
#include "cluster/elink.h"
#include "cluster/maintenance_protocol.h"
#include "common/rng.h"
#include "serve/session.h"
#include "serve/workload.h"

namespace elink {
namespace serve {
namespace {

using check::MakeScenario;
using check::NodeIsSafe;
using check::RangeOracle;
using check::SafePathExists;
using check::Scenario;

constexpr int kScenarios = 100;

struct ServedOp {
  WorkloadOp op;
  int client = 0;
  int index = 0;
  bool is_range = true;
  RangeAnswer range;
  PathAnswer path;
  bool from_cache = false;
  uint64_t signature = 0;
  EpochVector epochs;
};

// Thread-safe signature -> published-view log.  The writer records every
// view right after Publish; shared_ptrs keep superseded views alive for the
// post-hoc audit.
class ViewLog {
 public:
  void Record(std::shared_ptr<const ReadView> view) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = views_.emplace(view->epoch_signature(), view);
    if (!inserted) {
      // Same signature must mean the same published state (no-op publish).
      ASSERT_EQ(it->second->version(), view->version())
          << "epoch signature collision between distinct views";
    }
  }

  std::shared_ptr<const ReadView> Find(uint64_t signature) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = views_.find(signature);
    return it == views_.end() ? nullptr : it->second;
  }

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<const ReadView>> views_;
};

// The fault-free initial clustering, as the fuzz runner builds it.
Clustering InitialClustering(const Scenario& s) {
  ElinkConfig cfg;
  cfg.delta = s.delta;
  cfg.slack = s.slack;
  cfg.synchronous = true;
  cfg.seed = s.seed;
  auto r = RunElink(s.topology, s.features, *s.metric, cfg,
                    ElinkMode::kExplicit);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value().clustering;
}

void AuditAnswer(const Scenario& s, const ViewLog& log, const ServedOp& rec) {
  SCOPED_TRACE(testing::Message()
               << "repro: seed=" << s.seed << " client=" << rec.client
               << " op=" << rec.index
               << (rec.is_range ? " range r=" : " path gamma=")
               << rec.op.scalar << " src=" << rec.op.source
               << " dst=" << rec.op.destination
               << " cached=" << rec.from_cache << " sig=" << rec.signature);
  std::shared_ptr<const ReadView> view = log.Find(rec.signature);
  ASSERT_NE(view, nullptr) << "answer served from an unlogged view";
  if (rec.from_cache) {
    EXPECT_EQ(rec.epochs, view->epochs())
        << "stale hit: cached epoch vector was not current at serve time";
  }
  std::vector<int> remap(s.topology.num_nodes(), -1);
  for (int c = 0; c < view->num_live(); ++c) {
    remap[view->original_id(c)] = c;
  }
  if (rec.is_range) {
    const RangeAnswer fresh = view->Range(rec.op.feature, rec.op.scalar);
    EXPECT_TRUE(rec.range == fresh)
        << "served range answer differs from fresh recomputation at the "
           "served epoch";
    std::vector<int> oracle = RangeOracle(view->compact_features(), *s.metric,
                                          rec.op.feature, rec.op.scalar);
    for (int& id : oracle) id = view->original_id(id);
    EXPECT_EQ(rec.range.matches, oracle)
        << "served range answer differs from the linear-scan oracle";
  } else {
    const PathAnswer fresh = view->SafePath(rec.op.source, rec.op.destination,
                                            rec.op.feature, rec.op.scalar);
    EXPECT_TRUE(rec.path == fresh)
        << "served path answer differs from fresh recomputation at the "
           "served epoch";
    const bool live = view->node_live(rec.op.source) &&
                      view->node_live(rec.op.destination);
    const bool oracle =
        live && SafePathExists(view->compact_adjacency(),
                               view->compact_features(), *s.metric,
                               rec.op.feature, rec.op.scalar,
                               remap[rec.op.source],
                               remap[rec.op.destination]);
    EXPECT_EQ(rec.path.found, oracle)
        << "served path found-ness differs from the BFS oracle";
    if (rec.path.found) {
      const std::vector<int>& p = rec.path.path;
      ASSERT_FALSE(p.empty());
      EXPECT_EQ(p.front(), rec.op.source);
      EXPECT_EQ(p.back(), rec.op.destination);
      for (size_t i = 0; i < p.size(); ++i) {
        ASSERT_TRUE(view->node_live(p[i])) << "path walks absent node";
        EXPECT_TRUE(NodeIsSafe(view->compact_features()[remap[p[i]]],
                               *s.metric, rec.op.feature, rec.op.scalar))
            << "path walks unsafe node " << p[i];
        if (i + 1 < p.size()) {
          const auto& nbrs = view->compact_adjacency()[remap[p[i]]];
          EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), remap[p[i + 1]]) !=
                      nbrs.end())
              << "path hops a non-edge " << p[i] << "->" << p[i + 1];
        }
      }
    } else {
      EXPECT_TRUE(rec.path.path.empty());
    }
  }
}

void RunScenarioWithClients(uint64_t seed) {
  auto sr = MakeScenario(seed);
  ASSERT_TRUE(sr.ok()) << sr.status().ToString();
  const Scenario s = std::move(sr).value();
  const int n = s.topology.num_nodes();
  const Clustering initial = InitialClustering(s);

  MaintenanceConfig mcfg;
  mcfg.delta = s.delta;
  mcfg.slack = s.slack;
  DistributedMaintenance dm(s.topology, initial, s.features, s.metric, mcfg,
                            s.synchronous, s.seed, FaultPlan{}, s.churn);

  ServeFrontend::Options fopt;
  fopt.delta = s.delta;
  fopt.cache.shards = 4;
  fopt.cache.capacity_per_shard = 32;  // Small enough to force eviction.
  MaintenanceServeDriver driver(&dm, s.metric, fopt);

  ViewLog log;
  log.Record(driver.frontend().View());

  WorkloadConfig wcfg;
  wcfg.num_clients = std::max(2, s.serve_clients);
  wcfg.ops_per_client = std::max(12, s.serve_ops);
  wcfg.range_fraction = s.serve_range_fraction;
  wcfg.predicate_pool = s.serve_pool;
  wcfg.zipf_s = s.serve_zipf;
  wcfg.unique_fraction = 0.1;
  WorkloadGenerator gen(s.features, n, wcfg, seed * 1000003ULL);

  std::vector<std::vector<ServedOp>> recorded(wcfg.num_clients);
  std::atomic<bool> writer_done{false};

  // Client threads: replay their deterministic streams (looping until the
  // writer finishes, so queries overlap every publish) and record each
  // served answer with its provenance.
  std::vector<std::thread> clients;
  clients.reserve(wcfg.num_clients);
  for (int c = 0; c < wcfg.num_clients; ++c) {
    clients.emplace_back([&, c] {
      const std::vector<WorkloadOp> ops = gen.ClientOps(c);
      std::vector<ServedOp>& out = recorded[c];
      int pass = 0;
      do {
        for (size_t k = 0; k < ops.size(); ++k) {
          ServedOp rec;
          rec.op = ops[k];
          rec.client = c;
          rec.index = static_cast<int>(k);
          rec.is_range = ops[k].is_range;
          if (ops[k].is_range) {
            const ServedRange sr2 =
                driver.frontend().Range(ops[k].feature, ops[k].scalar);
            rec.range = sr2.answer;
            rec.from_cache = sr2.from_cache;
            rec.signature = sr2.epoch_signature;
            rec.epochs = sr2.epochs;
          } else {
            const ServedPath sp = driver.frontend().SafePath(
                ops[k].source, ops[k].destination, ops[k].feature,
                ops[k].scalar);
            rec.path = sp.answer;
            rec.from_cache = sp.from_cache;
            rec.signature = sp.epoch_signature;
            rec.epochs = sp.epochs;
          }
          out.push_back(std::move(rec));
        }
        ++pass;
      } while (!writer_done.load(std::memory_order_acquire) && pass < 50);
    });
  }

  // Writer thread: the single maintenance driver.  Publishes after every
  // quiescent step.  A client may serve from a view before the writer logs
  // it, but the log is only read after both sides join, so every signature
  // a client recorded is resolvable by then.
  std::thread writer([&] {
    for (const check::TimedUpdate& u : s.scheduled_updates) {
      dm.ScheduleUpdate(u.at, u.node, u.feature);
    }
    Rng urng(seed ^ 0x5EB7E);
    const int dim = s.feature_dim;
    if (s.churn.enabled()) {
      for (int u = 0; u < s.num_updates; ++u) {
        const int node = static_cast<int>(urng.UniformInt(n));
        Feature f = dm.CurrentFeatures()[node];
        for (int k = 0; k < dim; ++k) {
          f[k] += urng.Uniform(-0.2, 0.2) * s.delta;
        }
        dm.ScheduleUpdate(urng.Uniform(1.0, 100.0), node, f);
      }
      driver.RunToQuiescenceAndPublish();
      log.Record(driver.frontend().View());
    } else {
      for (int u = 0; u < s.num_updates; ++u) {
        const int node = static_cast<int>(urng.UniformInt(n));
        Feature f = dm.CurrentFeatures()[node];
        if (urng.Bernoulli(0.5)) {
          for (int k = 0; k < dim; ++k) {
            f[k] += urng.Uniform(-0.15, 0.15) * s.delta;
          }
        } else {
          const Feature& target = s.features[urng.UniformInt(n)];
          for (int k = 0; k < dim; ++k) {
            f[k] = target[k] + urng.Uniform(-0.1, 0.1) * s.delta;
          }
        }
        driver.ApplyUpdateAndPublish(node, f);
        log.Record(driver.frontend().View());
      }
    }
    writer_done.store(true, std::memory_order_release);
  });

  writer.join();
  for (std::thread& t : clients) t.join();

  size_t answers = 0;
  size_t hits = 0;
  for (const auto& per_client : recorded) {
    for (const ServedOp& rec : per_client) {
      AuditAnswer(s, log, rec);
      ++answers;
      if (rec.from_cache) ++hits;
    }
  }
  EXPECT_GT(answers, 0u);
  // Pooled predicates repeat, so a scenario that served more than one full
  // client pass must have produced hits.
  if (answers > 2 * static_cast<size_t>(wcfg.ops_per_client)) {
    EXPECT_GT(hits, 0u) << "no cache hits across " << answers
                        << " pooled queries (seed " << seed << ")";
  }
}

TEST(ServeParityTest, HundredFuzzedScenariosUnderConcurrentMaintenance) {
  for (uint64_t seed = 1; seed <= kScenarios; ++seed) {
    RunScenarioWithClients(seed);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "fatal failure at scenario seed " << seed;
    }
  }
}

}  // namespace
}  // namespace serve
}  // namespace elink
