// Tests for src/index: M-tree invariants, backbone structure, range-query
// exactness + pruning, path-query safety, and the TAG baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "baselines/centralized_cost.h"
#include "cluster/elink.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "data/tao.h"
#include "data/terrain.h"
#include "index/backbone.h"
#include "index/mtree.h"
#include "index/path_query.h"
#include "index/range_query.h"
#include "index/tag.h"
#include "sim/topology.h"

namespace elink {
namespace {

/// Everything needed to query one clustered dataset.
struct QueryFixture {
  SensorDataset ds;
  Clustering clustering;
  std::vector<int> tree_parent;
  std::unique_ptr<ClusterIndex> index;
  std::unique_ptr<Backbone> backbone;
  double delta = 0.0;

  static QueryFixture Make(SensorDataset dataset, double delta_frac,
                           uint64_t seed = 5) {
    QueryFixture fx;
    fx.ds = std::move(dataset);
    fx.delta = delta_frac * FeatureDiameter(fx.ds);
    ElinkConfig cfg;
    cfg.delta = fx.delta;
    cfg.seed = seed;
    Result<ElinkResult> r = RunElink(fx.ds, cfg, ElinkMode::kImplicit);
    ELINK_CHECK(r.ok());
    fx.clustering = std::move(r.value().clustering);
    fx.tree_parent = BuildClusterTrees(fx.clustering, fx.ds.topology.adjacency);
    fx.index = std::make_unique<ClusterIndex>(ClusterIndex::Build(
        fx.clustering, fx.tree_parent, fx.ds.features, *fx.ds.metric));
    fx.backbone = std::make_unique<Backbone>(
        Backbone::Build(fx.clustering, fx.ds.topology.adjacency, nullptr,
                        &fx.ds.features, fx.ds.metric.get()));
    return fx;
  }

  RangeQueryEngine MakeRangeEngine() const {
    return RangeQueryEngine(clustering, *index, *backbone, ds.features,
                            *ds.metric, delta);
  }
  PathQueryEngine MakePathEngine() const {
    return PathQueryEngine(clustering, *index, *backbone,
                           ds.topology.adjacency, ds.features, *ds.metric,
                           delta);
  }
};

SensorDataset SmallSynthetic(uint64_t seed = 31) {
  SyntheticConfig cfg;
  cfg.num_nodes = 120;
  cfg.seed = seed;
  return std::move(MakeSyntheticDataset(cfg)).value();
}

SensorDataset SmallTerrain(uint64_t seed = 7) {
  TerrainConfig cfg;
  cfg.num_nodes = 220;
  cfg.radio_range_fraction = 0.1;
  cfg.seed = seed;
  return std::move(MakeTerrainDataset(cfg)).value();
}

// -- M-tree -------------------------------------------------------------------

TEST(MTreeTest, CoveringRadiiDominateSubtreeDistances) {
  QueryFixture fx = QueryFixture::Make(SmallTerrain(), 0.25);
  for (int i = 0; i < fx.index->num_nodes(); ++i) {
    for (int member : fx.index->subtree(i)) {
      const double d = fx.ds.metric->Distance(fx.index->routing_feature(i),
                                              fx.ds.features[member]);
      EXPECT_LE(d, fx.index->covering_radius(i) + 1e-9)
          << "node " << i << " member " << member;
    }
  }
}

TEST(MTreeTest, LeavesHaveZeroRadiusAndSelfSubtree) {
  QueryFixture fx = QueryFixture::Make(SmallSynthetic(), 0.3);
  for (int i = 0; i < fx.index->num_nodes(); ++i) {
    if (fx.index->children(i).empty()) {
      EXPECT_DOUBLE_EQ(fx.index->covering_radius(i), 0.0);
      EXPECT_EQ(fx.index->subtree(i), std::vector<int>{i});
    }
  }
}

TEST(MTreeTest, SubtreesPartitionClusters) {
  QueryFixture fx = QueryFixture::Make(SmallSynthetic(), 0.3);
  for (const auto& [root, members] : fx.clustering.Groups()) {
    EXPECT_EQ(fx.index->subtree(root), members);
  }
}

TEST(MTreeTest, RootBallRadiusIsExact) {
  QueryFixture fx = QueryFixture::Make(SmallTerrain(), 0.3);
  for (const auto& [root, members] : fx.clustering.Groups()) {
    double expected = 0.0;
    for (int m : members) {
      expected = std::max(expected, fx.ds.metric->Distance(
                                        fx.ds.features[root],
                                        fx.ds.features[m]));
    }
    EXPECT_NEAR(fx.index->root_ball_radius(root), expected, 1e-12);
    // For pristine ELink clusters this is at most delta / 2 (join rule);
    // repaired fragments may reach delta.
    EXPECT_LE(fx.index->root_ball_radius(root), fx.delta + 1e-9);
  }
}

TEST(MTreeTest, BuildCostOneMessagePerTreeEdge) {
  QueryFixture fx = QueryFixture::Make(SmallSynthetic(), 0.3);
  MessageStats stats;
  ClusterIndex::Build(fx.clustering, fx.tree_parent, fx.ds.features,
                      *fx.ds.metric, &stats);
  const int edges =
      fx.index->num_nodes() - fx.clustering.num_clusters();
  EXPECT_EQ(stats.sends("mtree_build"), static_cast<uint64_t>(edges));
}

// -- Backbone -----------------------------------------------------------------

TEST(BackboneTest, SpansAllLeaders) {
  QueryFixture fx = QueryFixture::Make(SmallSynthetic(), 0.25);
  std::set<int> roots;
  for (int r : fx.clustering.root_of) roots.insert(r);
  ASSERT_EQ(fx.backbone->leaders().size(), roots.size());
  // Every leader reaches the tree root by parent pointers.
  for (int leader : fx.backbone->leaders()) {
    int cur = leader, steps = 0;
    while (cur != fx.backbone->tree_root() &&
           steps <= static_cast<int>(roots.size())) {
      cur = fx.backbone->tree_parent(cur);
      ++steps;
    }
    EXPECT_EQ(cur, fx.backbone->tree_root());
  }
}

TEST(BackboneTest, RouteHopsPositiveAndSymmetricEnough) {
  QueryFixture fx = QueryFixture::Make(SmallSynthetic(), 0.25);
  for (int leader : fx.backbone->leaders()) {
    const int parent = fx.backbone->tree_parent(leader);
    if (parent != leader) {
      EXPECT_GT(fx.backbone->route_hops(leader, parent), 0);
    }
  }
  EXPECT_GT(fx.backbone->total_tree_hops(),
            static_cast<int>(fx.backbone->leaders().size()) - 2);
}

TEST(BackboneTest, BuildCostRecorded) {
  QueryFixture fx = QueryFixture::Make(SmallSynthetic(), 0.25);
  MessageStats stats;
  Backbone::Build(fx.clustering, fx.ds.topology.adjacency, &stats);
  if (fx.backbone->leaders().size() > 1) {
    EXPECT_GT(stats.units("backbone_build"), 0u);
  }
}

// -- Range queries ---------------------------------------------------------------

TEST(RangeQueryTest, MatchesLinearScanAcrossRadii) {
  QueryFixture fx = QueryFixture::Make(SmallTerrain(), 0.2);
  RangeQueryEngine engine = fx.MakeRangeEngine();
  Rng rng(101);
  for (int trial = 0; trial < 40; ++trial) {
    const int probe = static_cast<int>(rng.UniformInt(220));
    const Feature q = fx.ds.features[probe];
    const double r = rng.Uniform(0.0, 1.2) * fx.delta;
    const int initiator = static_cast<int>(rng.UniformInt(220));
    RangeQueryResult res = engine.Query(initiator, q, r);
    EXPECT_EQ(res.matches, engine.LinearScan(q, r))
        << "trial " << trial << " r=" << r;
  }
}

TEST(RangeQueryTest, MatchesLinearScanOnUncorrelatedData) {
  QueryFixture fx = QueryFixture::Make(SmallSynthetic(), 0.35);
  RangeQueryEngine engine = fx.MakeRangeEngine();
  Rng rng(103);
  for (int trial = 0; trial < 40; ++trial) {
    Feature q = {rng.Uniform(0.3, 0.9)};
    const double r = rng.Uniform(0.1, 0.8) * fx.delta;
    RangeQueryResult res =
        engine.Query(static_cast<int>(rng.UniformInt(120)), q, r);
    EXPECT_EQ(res.matches, engine.LinearScan(q, r));
  }
}

TEST(RangeQueryTest, FarQueryExcludesEverythingCheaply) {
  QueryFixture fx = QueryFixture::Make(SmallTerrain(), 0.2);
  RangeQueryEngine engine = fx.MakeRangeEngine();
  // A query feature far outside the elevation range with a small radius.
  RangeQueryResult res = engine.Query(0, {1e6}, 0.1 * fx.delta);
  EXPECT_TRUE(res.matches.empty());
  EXPECT_EQ(res.clusters_descended, 0);
  EXPECT_EQ(res.stats.units("query_descend"), 0u);
  // The upper-level index prunes every backbone subtree at the root: no
  // backbone transmission happens at all.
  EXPECT_GE(res.clusters_excluded, 1);  // The root leader itself.
  EXPECT_EQ(res.stats.units("query_backbone"), 0u);
  EXPECT_EQ(res.backbone_subtrees_pruned,
            static_cast<int>(
                fx.backbone->tree_children(fx.backbone->tree_root()).size()));
}

TEST(RangeQueryTest, HugeRadiusIncludesEverything) {
  QueryFixture fx = QueryFixture::Make(SmallTerrain(), 0.2);
  RangeQueryEngine engine = fx.MakeRangeEngine();
  RangeQueryResult res =
      engine.Query(3, fx.ds.features[0], 10 * FeatureDiameter(fx.ds));
  EXPECT_EQ(static_cast<int>(res.matches.size()), fx.ds.topology.num_nodes());
  EXPECT_EQ(res.clusters_descended, 0);  // Whole clusters included.
}

TEST(RangeQueryTest, CorrelatedDataPrunesMoreThanTag) {
  // Fig. 14's mechanism: on spatially correlated data, per-query cost is
  // well below TAG's fixed 2x tree edges.
  QueryFixture fx = QueryFixture::Make(SmallTerrain(), 0.25);
  RangeQueryEngine engine = fx.MakeRangeEngine();
  TagAggregator tag(fx.ds.topology.adjacency,
                    PickBaseStation(fx.ds.topology), fx.ds.features,
                    *fx.ds.metric);
  Rng rng(107);
  uint64_t elink_total = 0, tag_total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const int probe = static_cast<int>(rng.UniformInt(220));
    const Feature q = fx.ds.features[probe];
    const double r = 0.8 * fx.delta;
    RangeQueryResult res =
        engine.Query(static_cast<int>(rng.UniformInt(220)), q, r);
    MessageStats tag_stats;
    const auto tag_matches = tag.RangeQuery(q, r, &tag_stats);
    EXPECT_EQ(res.matches, tag_matches);
    elink_total += res.stats.total_units();
    tag_total += tag_stats.total_units();
  }
  EXPECT_LT(elink_total, tag_total);
}

// -- TAG --------------------------------------------------------------------------

TEST(TagTest, FixedCostPerQuery) {
  QueryFixture fx = QueryFixture::Make(SmallSynthetic(), 0.3);
  TagAggregator tag(fx.ds.topology.adjacency, 0, fx.ds.features,
                    *fx.ds.metric);
  EXPECT_EQ(tag.num_tree_edges(), fx.ds.topology.num_nodes() - 1);
  MessageStats s1, s2;
  tag.RangeQuery({0.5}, 0.01, &s1);
  tag.RangeQuery({0.5}, 100.0, &s2);
  // Cost is independent of selectivity.
  EXPECT_EQ(s1.total_units(), s2.total_units());
  EXPECT_EQ(s1.sends("tag_distribute"),
            static_cast<uint64_t>(tag.num_tree_edges()));
}

// -- Path queries -------------------------------------------------------------------

TEST(PathQueryTest, AgreesWithBfsBaselineOnFeasibility) {
  QueryFixture fx = QueryFixture::Make(SmallTerrain(), 0.2);
  PathQueryEngine engine = fx.MakePathEngine();
  Rng rng(109);
  int found_count = 0, notfound_count = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const int src = static_cast<int>(rng.UniformInt(220));
    const int dst = static_cast<int>(rng.UniformInt(220));
    const Feature danger = {rng.Uniform(175.0, 1996.0)};
    const double gamma = rng.Uniform(0.05, 0.5) * FeatureDiameter(fx.ds);
    const PathQueryResult ours = engine.Query(src, dst, danger, gamma);
    const PathQueryResult bfs = engine.BfsBaseline(src, dst, danger, gamma);
    EXPECT_EQ(ours.found, bfs.found) << "trial " << trial;
    (ours.found ? found_count : notfound_count)++;
    if (ours.found) {
      // Path is a real communication path, endpoints correct, all safe.
      EXPECT_EQ(ours.path.front(), src);
      EXPECT_EQ(ours.path.back(), dst);
      for (size_t i = 0; i + 1 < ours.path.size(); ++i) {
        EXPECT_TRUE(std::find(fx.ds.topology.adjacency[ours.path[i]].begin(),
                              fx.ds.topology.adjacency[ours.path[i]].end(),
                              ours.path[i + 1]) !=
                    fx.ds.topology.adjacency[ours.path[i]].end());
      }
      for (int node : ours.path) {
        EXPECT_TRUE(engine.IsSafe(node, danger, gamma));
      }
    }
  }
  // The sweep must exercise both outcomes to be meaningful.
  EXPECT_GT(found_count, 0);
  EXPECT_GT(notfound_count, 0);
}

TEST(PathQueryTest, SourceEqualsDestination) {
  QueryFixture fx = QueryFixture::Make(SmallTerrain(), 0.2);
  PathQueryEngine engine = fx.MakePathEngine();
  // A danger far from everything: all nodes safe.
  const PathQueryResult r = engine.Query(5, 5, {1e9}, 10.0);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.path, std::vector<int>{5});
}

TEST(PathQueryTest, UnsafeSourceReportsNotFound) {
  QueryFixture fx = QueryFixture::Make(SmallTerrain(), 0.2);
  PathQueryEngine engine = fx.MakePathEngine();
  // Danger exactly at node 0's feature with a generous gamma: 0 is unsafe.
  const Feature danger = fx.ds.features[0];
  const double gamma = 0.3 * FeatureDiameter(fx.ds);
  ASSERT_FALSE(engine.IsSafe(0, danger, gamma));
  const PathQueryResult r = engine.Query(0, 10, danger, gamma);
  EXPECT_FALSE(r.found);
}

TEST(PathQueryTest, CheaperThanBfsFloodOnAverage) {
  QueryFixture fx = QueryFixture::Make(SmallTerrain(), 0.25);
  PathQueryEngine engine = fx.MakePathEngine();
  Rng rng(113);
  uint64_t ours_total = 0, bfs_total = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const int src = static_cast<int>(rng.UniformInt(220));
    const int dst = static_cast<int>(rng.UniformInt(220));
    const Feature danger = {rng.Uniform(175.0, 1996.0)};
    const double gamma = 0.2 * FeatureDiameter(fx.ds);
    ours_total += engine.Query(src, dst, danger, gamma).stats.total_units();
    bfs_total +=
        engine.BfsBaseline(src, dst, danger, gamma).stats.total_units();
  }
  EXPECT_LT(ours_total, bfs_total);
}

}  // namespace
}  // namespace elink
