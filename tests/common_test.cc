// Tests for src/common: Status/Result, Rng, strings, logging.
#include <gtest/gtest.h>

#include <set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace elink {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad delta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad delta");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad delta");
}

TEST(StatusTest, AllErrorConstructors) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanApproximatelyCentered) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(2.0, 4.0);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.UniformInt(10)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(RngTest, UniformIntRangeInclusive) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformIntRange(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkGivesIndependentStreams) {
  Rng base(29);
  Rng f1 = base.Fork(1);
  Rng f2 = base.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.Next() == f2.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, JoinRoundTrips) {
  EXPECT_EQ(Join({"x", "y", "z"}, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
  EXPECT_EQ(Join({"solo"}, "-"), "solo");
}

TEST(StringsTest, StringPrintfFormats) {
  EXPECT_EQ(StringPrintf("%d/%s", 7, "seven"), "7/seven");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
}

TEST(StringsTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(2.0), "2.0");
  EXPECT_EQ(FormatDouble(0.12345, 3), "0.123");
}

TEST(LoggingTest, LevelFilterRoundTrip) {
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  ELINK_LOG(Info) << "suppressed message";  // Must not crash.
  SetLogLevel(old_level);
}

TEST(LoggingTest, ParseLogLevelAcceptsEnvVarSpellings) {
  LogLevel level = LogLevel::kWarning;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST(LoggingTest, ParseLogLevelRejectsUnknownNames) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_FALSE(ParseLogLevel(nullptr, &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("debug ", &level));
  EXPECT_EQ(level, LogLevel::kInfo);  // Untouched on failure.
}

TEST(LoggingTest, EnvVarSelectsInitialLevel) {
  // GetLogLevel consults ELINK_LOG_LEVEL lazily; exercise the parse-and-
  // apply path in a child-free way by spawning the logic directly: set the
  // variable, reset the cached state via SetLogLevel, and verify the
  // documented precedence — an explicit SetLogLevel wins over the env.
  ::setenv("ELINK_LOG_LEVEL", "debug", /*overwrite=*/1);
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);  // Explicit set wins.
  SetLogLevel(old_level);
  ::unsetenv("ELINK_LOG_LEVEL");
}

}  // namespace
}  // namespace elink
