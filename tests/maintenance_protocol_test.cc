// Tests for the distributed Section-6 maintenance protocol: behavior on
// hand-built scenarios, invariant under random replay, and agreement with
// the centralized MaintenanceSession accounting model.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/elink.h"
#include "cluster/maintenance_protocol.h"
#include "common/rng.h"
#include "data/plume.h"
#include "data/synthetic.h"
#include "sim/topology.h"

namespace elink {
namespace {

std::shared_ptr<const DistanceMetric> OneDim() {
  return std::make_shared<WeightedEuclidean>(WeightedEuclidean::Euclidean(1));
}

/// 1x4 path, clusters {0,1} (root 0) and {2,3} (root 2).
struct PathFixture {
  Topology topology = MakeGridTopology(1, 4);
  Clustering clustering;
  std::vector<Feature> features = {{0.0}, {0.0}, {10.0}, {10.0}};

  PathFixture() { clustering.root_of = {0, 0, 2, 2}; }

  DistributedMaintenance Make(double delta, double slack) {
    MaintenanceConfig cfg;
    cfg.delta = delta;
    cfg.slack = slack;
    return DistributedMaintenance(topology, clustering, features, OneDim(),
                                  cfg);
  }
};

TEST(MaintenanceProtocolTest, SilentUpdateSendsNothing) {
  PathFixture fx;
  DistributedMaintenance m = fx.Make(4.0, 1.0);
  m.ApplyUpdate(1, {0.5});  // A1 holds.
  EXPECT_EQ(m.stats().total_units(), 0u);
  EXPECT_EQ(m.CurrentClustering().root_of, fx.clustering.root_of);
}

TEST(MaintenanceProtocolTest, EscalationFetchesRootAndStays) {
  PathFixture fx;
  DistributedMaintenance m = fx.Make(4.0, 1.0);
  m.ApplyUpdate(1, {3.5});  // A1-A3 fail; live root still fits.
  EXPECT_GT(m.stats().units("update_escalate"), 0u);
  EXPECT_EQ(m.CurrentClustering().root_of[1], 0);
}

TEST(MaintenanceProtocolTest, DetachMergesWithNeighborCluster) {
  PathFixture fx;
  DistributedMaintenance m = fx.Make(4.0, 1.0);
  m.ApplyUpdate(1, {9.0});  // Too far from root 0; neighbor 2's cluster fits.
  EXPECT_EQ(m.CurrentClustering().root_of[1], 2);
  EXPECT_GT(m.stats().units("update_merge_probe"), 0u);
  EXPECT_TRUE(m.ValidateRootDistanceInvariant(4.0 + 2.0).ok());
}

TEST(MaintenanceProtocolTest, DetachBecomesSingletonWhenNothingFits) {
  PathFixture fx;
  DistributedMaintenance m = fx.Make(4.0, 1.0);
  m.ApplyUpdate(1, {100.0});
  EXPECT_EQ(m.CurrentClustering().root_of[1], 1);
  EXPECT_EQ(m.CurrentClustering().num_clusters(), 3);
}

TEST(MaintenanceProtocolTest, RootPushEvictsFarMembers) {
  PathFixture fx;
  DistributedMaintenance m = fx.Make(4.0, 1.0);
  m.ApplyUpdate(0, {6.0});  // Root drifts; member 1 (at 0) is evicted.
  EXPECT_GT(m.stats().units("update_root_push"), 0u);
  const Clustering after = m.CurrentClustering();
  EXPECT_EQ(after.root_of[0], 0);
  EXPECT_EQ(after.root_of[1], 1);  // Singleton: no compatible neighbor.
}

TEST(MaintenanceProtocolTest, ArticulationDetachReattachesSubtree) {
  // Path 0-1-2, all one cluster rooted at 0; the middle node leaves.  Node 2
  // is orphaned and cannot reach the old cluster: it promotes itself.
  Topology t = MakeGridTopology(1, 3);
  Clustering c;
  c.root_of = {0, 0, 0};
  std::vector<Feature> f = {{0.0}, {0.0}, {0.0}};
  MaintenanceConfig cfg;
  cfg.delta = 2.0;
  cfg.slack = 0.5;
  DistributedMaintenance m(t, c, f, OneDim(), cfg);
  m.ApplyUpdate(1, {50.0});
  const Clustering after = m.CurrentClustering();
  EXPECT_EQ(after.root_of[1], 1);
  // Node 2's only route to root 0 went through node 1; it either reattached
  // through node 1's new cluster (incompatible here) or promoted itself.
  EXPECT_EQ(after.root_of[2], 2);
  EXPECT_TRUE(m.ValidateRootDistanceInvariant(2.0 + 1.0).ok());
}

TEST(MaintenanceProtocolTest, InvariantUnderRandomReplay) {
  SyntheticConfig scfg;
  scfg.num_nodes = 80;
  scfg.seed = 301;
  const SensorDataset ds = std::move(MakeSyntheticDataset(scfg)).value();
  const double delta = 0.35 * FeatureDiameter(ds);
  const double slack = 0.1 * delta;
  ElinkConfig ecfg;
  ecfg.delta = delta;
  ecfg.slack = slack;
  ecfg.seed = 5;
  const ElinkResult base =
      std::move(RunElink(ds, ecfg, ElinkMode::kImplicit)).value();

  MaintenanceConfig mcfg;
  mcfg.delta = delta;
  mcfg.slack = slack;
  DistributedMaintenance protocol(ds.topology, base.clustering, ds.features,
                                  ds.metric, mcfg);
  Rng rng(909);
  std::vector<Feature> current = ds.features;
  for (int round = 0; round < 15; ++round) {
    for (int i = 0; i < 80; ++i) {
      current[i][0] += rng.Normal(0.0, 0.03 * delta);
      protocol.ApplyUpdate(i, current[i]);
    }
  }
  EXPECT_TRUE(protocol.ValidateRootDistanceInvariant(delta + 2 * slack).ok());
  EXPECT_EQ(protocol.CurrentFeatures(), current);
}

TEST(MaintenanceProtocolTest, TracksCentralizedModelOnSameReplay) {
  // Same update stream through the protocol and the accounting session:
  // cluster counts must stay close and costs within a small factor (the
  // protocol pays extra attach/orphan traffic; the session charges ideal
  // tree hops).
  SyntheticConfig scfg;
  scfg.num_nodes = 100;
  scfg.seed = 302;
  const SensorDataset ds = std::move(MakeSyntheticDataset(scfg)).value();
  const double delta = 0.35 * FeatureDiameter(ds);
  const double slack = 0.08 * delta;
  ElinkConfig ecfg;
  ecfg.delta = delta;
  ecfg.slack = slack;
  ecfg.seed = 6;
  const ElinkResult base =
      std::move(RunElink(ds, ecfg, ElinkMode::kImplicit)).value();

  MaintenanceConfig mcfg;
  mcfg.delta = delta;
  mcfg.slack = slack;
  DistributedMaintenance protocol(ds.topology, base.clustering, ds.features,
                                  ds.metric, mcfg);
  MaintenanceSession session(ds.topology, base.clustering, ds.features,
                             ds.metric, mcfg);
  Rng rng(911);
  std::vector<Feature> current = ds.features;
  for (int round = 0; round < 12; ++round) {
    for (int i = 0; i < 100; ++i) {
      current[i][0] += rng.Normal(0.0, 0.04 * delta);
      protocol.ApplyUpdate(i, current[i]);
      session.UpdateFeature(i, current[i]);
    }
  }
  const int protocol_clusters = protocol.CurrentClustering().num_clusters();
  const int session_clusters = session.clustering().num_clusters();
  EXPECT_LE(std::abs(protocol_clusters - session_clusters),
            std::max(3, session_clusters / 3));
  const double ratio =
      static_cast<double>(protocol.stats().total_units() + 1) /
      static_cast<double>(session.stats().total_units() + 1);
  EXPECT_GT(ratio, 0.2);
  EXPECT_LT(ratio, 5.0);
}

TEST(MaintenanceProtocolTest, PlumeEpisodeKeepsInvariant) {
  // The moving-plume workload drives heavy membership churn; the protocol
  // must hold the invariant throughout.
  PlumeConfig pcfg;
  pcfg.num_nodes = 120;
  pcfg.radio_range_fraction = 0.14;
  const SensorDataset ds = std::move(MakePlumeDataset(pcfg)).value();
  const double delta = 0.3 * FeatureDiameter(ds);
  const double slack = 0.1 * delta;
  ElinkConfig ecfg;
  ecfg.delta = delta;
  ecfg.slack = slack;
  ecfg.seed = 8;
  const ElinkResult base =
      std::move(RunElink(ds, ecfg, ElinkMode::kImplicit)).value();
  MaintenanceConfig mcfg;
  mcfg.delta = delta;
  mcfg.slack = slack;
  DistributedMaintenance protocol(ds.topology, base.clustering, ds.features,
                                  ds.metric, mcfg);
  for (int step = 0; step < 20; ++step) {
    for (int i = 0; i < 120; ++i) {
      protocol.ApplyUpdate(i, {ds.streams[i][step]});
    }
    ASSERT_TRUE(
        protocol.ValidateRootDistanceInvariant(delta + 2 * slack).ok())
        << "step " << step;
  }
}

// -- Churn-aware self-healing -----------------------------------------------

TEST(MaintenanceChurnTest, CrashRepairRejoinsAndBumpsEpochs) {
  // Path 0-1-2-3, clusters {0,1} and {2,3}.  Node 3 crashes and is later
  // repaired: it must rejoin a valid cluster with its restart counted, the
  // membership change must bump a cluster epoch, and every transmission
  // lost along the way must be accounted as a churn drop.
  PathFixture fx;
  MaintenanceConfig cfg;
  cfg.delta = 4.0;
  cfg.slack = 1.0;
  ChurnPlan churn;
  churn.crashes.push_back({3, 5.0, 20.0});
  DistributedMaintenance m(fx.topology, fx.clustering, fx.features, OneDim(),
                           cfg, /*synchronous=*/true, /*seed=*/1, FaultPlan{},
                           churn);
  m.RunToQuiescence();
  EXPECT_TRUE(m.NodeLive(3));
  EXPECT_EQ(m.node_epoch(3), 1);
  EXPECT_GE(m.cluster_epoch(3), 1);
  // Back with its old peer (either side may end up the root: the repair is
  // a mutual-probe race settled by the staggered retry).
  const Clustering after = m.CurrentClustering();
  EXPECT_EQ(after.root_of[3], after.root_of[2]);
  EXPECT_TRUE(after.root_of[3] == 2 || after.root_of[3] == 3);
  EXPECT_TRUE(m.ValidateRootDistanceInvariant(4.0 + 2.0).ok());
  EXPECT_EQ(m.stats().dropped_sends(), m.churn_drops());
}

TEST(MaintenanceChurnTest, ParentLeaveOrphansAndPromotes) {
  // Path 0-1-2, one cluster rooted at 0.  The middle node leaves for good:
  // node 2 loses its only route to the root and must promote itself.
  Topology t = MakeGridTopology(1, 3);
  Clustering c;
  c.root_of = {0, 0, 0};
  std::vector<Feature> f = {{0.0}, {0.0}, {0.0}};
  MaintenanceConfig cfg;
  cfg.delta = 2.0;
  ChurnPlan churn;
  churn.leaves.push_back({1, 5.0});
  DistributedMaintenance m(t, c, f, OneDim(), cfg, /*synchronous=*/true,
                           /*seed=*/1, FaultPlan{}, churn);
  m.RunToQuiescence();
  EXPECT_FALSE(m.NodeLive(1));
  const Clustering after = m.CurrentClustering();
  EXPECT_EQ(after.root_of[0], 0);
  EXPECT_EQ(after.root_of[2], 2);
  EXPECT_TRUE(m.ValidateRootDistanceInvariant(2.0).ok());
}

TEST(MaintenanceChurnTest, LinkCutSplitsCluster) {
  // Path 0-1-2-3, one cluster rooted at 0.  Churn severs the 1-2 edge: the
  // far half can no longer reach the root and must re-cluster on its own,
  // while the near half keeps its tree.
  Topology t = MakeGridTopology(1, 4);
  Clustering c;
  c.root_of = {0, 0, 0, 0};
  std::vector<Feature> f = {{0.0}, {0.0}, {0.0}, {0.0}};
  MaintenanceConfig cfg;
  cfg.delta = 2.0;
  ChurnPlan churn;
  churn.link_changes.push_back({1, 2, 5.0, /*add=*/false});
  DistributedMaintenance m(t, c, f, OneDim(), cfg, /*synchronous=*/true,
                           /*seed=*/1, FaultPlan{}, churn);
  m.RunToQuiescence();
  const Clustering after = m.CurrentClustering();
  EXPECT_EQ(after.root_of[0], 0);
  EXPECT_EQ(after.root_of[1], 0);
  EXPECT_EQ(after.root_of[2], after.root_of[3]);
  EXPECT_TRUE(after.root_of[2] == 2 || after.root_of[2] == 3);
  EXPECT_TRUE(m.ValidateRootDistanceInvariant(2.0).ok());
  const auto live_adj = m.LiveAdjacency();
  EXPECT_EQ(live_adj[1], std::vector<int>{0});
  EXPECT_EQ(live_adj[2], std::vector<int>{3});
}

TEST(MaintenanceChurnTest, LateJoinFindsAHome) {
  // Node 3 is absent from the start and joins at t = 5 with a compatible
  // feature: it must probe its way into the adjacent cluster.
  PathFixture fx;
  MaintenanceConfig cfg;
  cfg.delta = 4.0;
  ChurnPlan churn;
  churn.joins.push_back({3, 5.0});
  DistributedMaintenance m(fx.topology, fx.clustering, fx.features, OneDim(),
                           cfg, /*synchronous=*/true, /*seed=*/1, FaultPlan{},
                           churn);
  m.RunToQuiescence();
  EXPECT_TRUE(m.NodeLive(3));
  const Clustering after = m.CurrentClustering();
  EXPECT_EQ(after.root_of[3], after.root_of[2]);
  EXPECT_TRUE(after.root_of[3] == 2 || after.root_of[3] == 3);
  EXPECT_EQ(m.node_epoch(3), 1);
  EXPECT_TRUE(m.ValidateRootDistanceInvariant(4.0).ok());
}

TEST(MaintenanceChurnTest, InertPlanMatchesChurnFreeRun) {
  // A default ChurnPlan must leave the protocol bit-identical to a session
  // built without one: same messages, same outcome.
  PathFixture fx;
  DistributedMaintenance plain = fx.Make(4.0, 1.0);
  MaintenanceConfig cfg;
  cfg.delta = 4.0;
  cfg.slack = 1.0;
  DistributedMaintenance inert(fx.topology, fx.clustering, fx.features,
                               OneDim(), cfg, /*synchronous=*/true, /*seed=*/1,
                               FaultPlan{}, ChurnPlan{});
  for (DistributedMaintenance* m : {&plain, &inert}) {
    m->ApplyUpdate(1, {9.0});
    m->ApplyUpdate(0, {6.0});
  }
  EXPECT_EQ(plain.CurrentClustering().root_of, inert.CurrentClustering().root_of);
  EXPECT_EQ(plain.stats().total_units(), inert.stats().total_units());
  EXPECT_EQ(inert.churn_drops(), 0u);
}

}  // namespace
}  // namespace elink
