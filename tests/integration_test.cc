// End-to-end integration tests: dataset generation -> ELink clustering ->
// maintenance under the live stream -> index construction -> queries,
// exercising the full pipeline the paper's system runs.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/centralized_cost.h"
#include "baselines/spanning_forest.h"
#include "cluster/elink.h"
#include "cluster/maintenance.h"
#include "common/rng.h"
#include "data/tao.h"
#include "data/terrain.h"
#include "index/backbone.h"
#include "index/mtree.h"
#include "index/path_query.h"
#include "index/range_query.h"
#include "timeseries/seasonal.h"

namespace elink {
namespace {

TEST(IntegrationTest, TaoPipelineClusterMaintainQuery) {
  // A scaled-down Tao month: cluster on trained features, stream a few days
  // of measurements through the seasonal models with maintenance, then
  // answer range queries against the final state.
  TaoConfig tcfg;
  tcfg.measurements_per_day = 48;
  tcfg.train_days = 10;
  tcfg.eval_days = 3;
  Result<SensorDataset> ds_r = MakeTaoDataset(tcfg);
  ASSERT_TRUE(ds_r.ok());
  SensorDataset& ds = ds_r.value();
  const int n = ds.topology.num_nodes();
  const double delta = 0.35 * FeatureDiameter(ds);
  const double slack = 0.1 * delta;

  // 1. Initial clustering with slack headroom.
  ElinkConfig ecfg;
  ecfg.delta = delta;
  ecfg.slack = slack;
  ecfg.seed = 3;
  Result<ElinkResult> clustered = RunElink(ds, ecfg, ElinkMode::kExplicit);
  ASSERT_TRUE(clustered.ok());
  ASSERT_TRUE(ValidateDeltaClustering(clustered.value().clustering,
                                      ds.topology.adjacency, ds.features,
                                      *ds.metric, delta)
                  .ok());

  // 2. Stream the evaluation days through per-node models + maintenance.
  MaintenanceConfig mcfg;
  mcfg.delta = delta;
  mcfg.slack = slack;
  MaintenanceSession session(ds.topology, clustered.value().clustering,
                             ds.features, ds.metric, mcfg);
  std::vector<SeasonalArModel> models;
  models.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Warm-start each node's model state from its training prefix.
    Result<SeasonalArModel> m = SeasonalArModel::Train(
        ds.train_streams[i], tcfg.measurements_per_day);
    ASSERT_TRUE(m.ok());
    models.push_back(std::move(m).value());
  }
  const int steps = tcfg.eval_days * tcfg.measurements_per_day;
  for (int t = 0; t < steps; ++t) {
    for (int i = 0; i < n; ++i) {
      models[i].Observe(ds.streams[i][t]);
      if (t % 16 == 15) {  // Periodic feature refresh.
        session.UpdateFeature(i, models[i].Feature());
      }
    }
  }
  EXPECT_TRUE(
      session.ValidateRootDistanceInvariant(delta + 2 * slack).ok());

  // 3. Index the final state and answer range queries exactly.
  const Clustering& final_clustering = session.clustering();
  const std::vector<Feature>& final_features = session.current_features();
  const auto tree = BuildClusterTrees(final_clustering, ds.topology.adjacency);
  const ClusterIndex index = ClusterIndex::Build(final_clustering, tree,
                                                 final_features, *ds.metric);
  const Backbone backbone =
      Backbone::Build(final_clustering, ds.topology.adjacency, nullptr,
                      &final_features, ds.metric.get());
  RangeQueryEngine engine(final_clustering, index, backbone, final_features,
                          *ds.metric, delta);
  Rng rng(11);
  for (int trial = 0; trial < 15; ++trial) {
    const Feature q = final_features[rng.UniformInt(n)];
    const double r = rng.Uniform(0.3, 1.0) * delta;
    RangeQueryResult res =
        engine.Query(static_cast<int>(rng.UniformInt(n)), q, r);
    EXPECT_EQ(res.matches, engine.LinearScan(q, r));
  }
}

TEST(IntegrationTest, TerrainHazardNavigation) {
  // Death-Valley-style hazard routing: cluster the terrain, then route
  // around an elevation band treated as dangerous.
  TerrainConfig tcfg;
  tcfg.num_nodes = 300;
  tcfg.radio_range_fraction = 0.09;
  tcfg.seed = 21;
  Result<SensorDataset> ds_r = MakeTerrainDataset(tcfg);
  ASSERT_TRUE(ds_r.ok());
  SensorDataset& ds = ds_r.value();
  const double delta = 0.2 * FeatureDiameter(ds);

  ElinkConfig ecfg;
  ecfg.delta = delta;
  ecfg.seed = 9;
  Result<ElinkResult> clustered = RunElink(ds, ecfg, ElinkMode::kImplicit);
  ASSERT_TRUE(clustered.ok());

  const auto tree =
      BuildClusterTrees(clustered.value().clustering, ds.topology.adjacency);
  const ClusterIndex index = ClusterIndex::Build(
      clustered.value().clustering, tree, ds.features, *ds.metric);
  const Backbone backbone =
      Backbone::Build(clustered.value().clustering, ds.topology.adjacency,
                      nullptr, &ds.features, ds.metric.get());
  PathQueryEngine engine(clustered.value().clustering, index, backbone,
                         ds.topology.adjacency, ds.features, *ds.metric,
                         delta);

  Rng rng(33);
  int agreements = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const int src = static_cast<int>(rng.UniformInt(300));
    const int dst = static_cast<int>(rng.UniformInt(300));
    const Feature danger = {rng.Uniform(300.0, 1800.0)};
    const double gamma = rng.Uniform(0.05, 0.35) * FeatureDiameter(ds);
    const PathQueryResult ours = engine.Query(src, dst, danger, gamma);
    const PathQueryResult bfs = engine.BfsBaseline(src, dst, danger, gamma);
    ASSERT_EQ(ours.found, bfs.found);
    ++agreements;
    if (ours.found) {
      for (int node : ours.path) EXPECT_TRUE(engine.IsSafe(node, danger, gamma));
    }
  }
  EXPECT_EQ(agreements, 20);
}

TEST(IntegrationTest, ElinkBeatsCentralizedOnUpdateTraffic) {
  // The headline Fig. 10 relation, end to end on Tao-like streams: the
  // in-network update protocol transmits far less than centralized
  // coefficient shipping under the same slack.
  TaoConfig tcfg;
  tcfg.measurements_per_day = 48;
  tcfg.train_days = 10;
  tcfg.eval_days = 2;
  Result<SensorDataset> ds_r = MakeTaoDataset(tcfg);
  ASSERT_TRUE(ds_r.ok());
  SensorDataset& ds = ds_r.value();
  const int n = ds.topology.num_nodes();
  const double delta = 0.35 * FeatureDiameter(ds);
  const double slack = 0.1 * delta;

  ElinkConfig ecfg;
  ecfg.delta = delta;
  ecfg.slack = slack;
  ecfg.seed = 4;
  Result<ElinkResult> clustered = RunElink(ds, ecfg, ElinkMode::kImplicit);
  ASSERT_TRUE(clustered.ok());
  MaintenanceConfig mcfg;
  mcfg.delta = delta;
  mcfg.slack = slack;
  MaintenanceSession elink_session(ds.topology, clustered.value().clustering,
                                   ds.features, ds.metric, mcfg);
  CentralizedModelUpdater central(ds.topology, PickBaseStation(ds.topology),
                                  ds.metric, slack, ds.features);

  std::vector<SeasonalArModel> models;
  models.reserve(n);
  for (int i = 0; i < n; ++i) {
    Result<SeasonalArModel> m = SeasonalArModel::Train(
        ds.train_streams[i], tcfg.measurements_per_day);
    ASSERT_TRUE(m.ok());
    models.push_back(std::move(m).value());
  }
  const int steps = tcfg.eval_days * tcfg.measurements_per_day;
  for (int t = 0; t < steps; ++t) {
    for (int i = 0; i < n; ++i) {
      models[i].Observe(ds.streams[i][t]);
      if (t % 8 == 7) {
        const Feature f = models[i].Feature();
        elink_session.UpdateFeature(i, f);
        central.UpdateFeature(i, f);
      }
    }
  }
  EXPECT_LT(elink_session.stats().total_units(),
            central.stats().total_units());
}

TEST(IntegrationTest, QualityOrderingOnCorrelatedData) {
  // Figs. 8-9's qualitative ordering on spatially correlated data: ELink
  // produces no more clusters than the greedy spanning forest.
  TerrainConfig tcfg;
  tcfg.num_nodes = 250;
  tcfg.radio_range_fraction = 0.1;
  Result<SensorDataset> ds_r = MakeTerrainDataset(tcfg);
  ASSERT_TRUE(ds_r.ok());
  SensorDataset& ds = ds_r.value();
  int elink_wins = 0, comparisons = 0;
  for (double frac : {0.15, 0.25, 0.4}) {
    const double delta = frac * FeatureDiameter(ds);
    ElinkConfig ecfg;
    ecfg.delta = delta;
    ecfg.seed = 6;
    Result<ElinkResult> el = RunElink(ds, ecfg, ElinkMode::kImplicit);
    ASSERT_TRUE(el.ok());
    Result<SpanningForestResult> sf = SpanningForestClustering(
        ds.topology.adjacency, ds.features, *ds.metric, delta);
    ASSERT_TRUE(sf.ok());
    ++comparisons;
    if (el.value().clustering.num_clusters() <=
        sf.value().clustering.num_clusters()) {
      ++elink_wins;
    }
  }
  EXPECT_EQ(elink_wins, comparisons);
}

}  // namespace
}  // namespace elink
