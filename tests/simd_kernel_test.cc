// Exact-equality parity of the SIMD weighted-L2 kernels vs the scalar
// oracle, on every code path the running CPU can dispatch to.
//
// The contract under test (metric/simd.h): the AVX2 and SSE2 kernels
// accumulate per lane in scalar dimension order with separate multiply/add,
// so their outputs are *byte-identical* to WeightedL2SoAScalar — which in
// turn matches WeightedEuclidean::Distance exactly.  "Close" is a failure:
// every comparison here is ==, including on denormals and extreme weight
// ratios.  The dispatched-level selection itself (ELINK_SIMD env clamp) is
// exercised by the forced-scalar ctest pass in CI; here every level the CPU
// supports is driven explicitly through WeightedL2SoAAt/WeightedL2IndexedAt.
#include "metric/simd.h"

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "metric/distance.h"
#include "metric/feature_pool.h"

namespace elink {
namespace {

std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (WeightedL2SoAAt(SimdLevel::kSse2) != nullptr) {
    levels.push_back(SimdLevel::kSse2);
  }
  if (WeightedL2SoAAt(SimdLevel::kAvx2) != nullptr) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

/// Runs one (query, candidates, weights) instance through the scalar oracle,
/// the virtual batch interface, and every supported kernel level (both SoA
/// and indexed forms, including a non-trivial index permutation), requiring
/// byte equality everywhere.
void ExpectAllPathsExact(const Feature& q, const std::vector<Feature>& cands,
                         const std::vector<double>& weights) {
  const FeaturePool pool(cands);
  const size_t n = cands.size();
  const size_t dim = weights.size();

  // Ground truth: the member-function scalar loop, element by element.
  const WeightedEuclidean metric{std::vector<double>(weights)};
  std::vector<double> want(n);
  for (size_t j = 0; j < n; ++j) want[j] = metric.Distance(q, cands[j]);

  std::vector<double> got(n, -1.0);
  WeightedL2SoAScalar(pool.soa(), pool.stride(), n, dim, q.data(),
                      weights.data(), got.data());
  for (size_t j = 0; j < n; ++j) {
    ASSERT_EQ(want[j], got[j]) << "scalar kernel vs Distance at " << j;
  }

  // Reversed indices exercise the gather path with a real permutation.
  std::vector<int> idx(n);
  for (size_t j = 0; j < n; ++j) idx[j] = static_cast<int>(n - 1 - j);

  for (SimdLevel level : SupportedLevels()) {
    std::vector<double> out(n, -1.0);
    WeightedL2SoAAt(level)(pool.soa(), pool.stride(), n, dim, q.data(),
                           weights.data(), out.data());
    for (size_t j = 0; j < n; ++j) {
      ASSERT_EQ(want[j], out[j])
          << SimdLevelName(level) << " SoA lane " << j << " of " << n;
    }
    std::vector<double> out_idx(n, -1.0);
    WeightedL2IndexedAt(level)(pool.soa(), pool.stride(), idx.data(), n, dim,
                               q.data(), weights.data(), out_idx.data());
    for (size_t j = 0; j < n; ++j) {
      ASSERT_EQ(want[idx[j]], out_idx[j])
          << SimdLevelName(level) << " indexed lane " << j << " of " << n;
    }
  }

  // The virtual interface must route to a bit-identical path too.
  std::vector<double> batch(n, -1.0);
  metric.BatchDistance(q, pool, batch.data());
  for (size_t j = 0; j < n; ++j) ASSERT_EQ(want[j], batch[j]);
  std::vector<double> batch_idx(n, -1.0);
  metric.BatchDistanceIndexed(q, pool, idx.data(), n, batch_idx.data());
  for (size_t j = 0; j < n; ++j) ASSERT_EQ(want[idx[j]], batch_idx[j]);
}

TEST(SimdKernelTest, DispatchReportsAKnownLevel) {
  const SimdLevel level = ActiveSimdLevel();
  EXPECT_TRUE(level == SimdLevel::kScalar || level == SimdLevel::kSse2 ||
              level == SimdLevel::kAvx2);
  EXPECT_NE(WeightedL2SoA(), nullptr);
  EXPECT_NE(WeightedL2Indexed(), nullptr);
  // Whatever was dispatched must be obtainable explicitly.
  EXPECT_EQ(WeightedL2SoA(), WeightedL2SoAAt(level));
  EXPECT_EQ(WeightedL2Indexed(), WeightedL2IndexedAt(level));
}

TEST(SimdKernelTest, RandomVectorsAllDatasetDimensionalities) {
  // 1 = terrain/AR(1), 2 = synthetic clouds, 4 = Tao model; 3 and 5..8 cover
  // the remainders mod SIMD width, so every tail length is hit.
  std::mt19937_64 rng(20260808);
  std::uniform_real_distribution<double> val(-50.0, 50.0);
  std::uniform_real_distribution<double> wgt(1e-3, 10.0);
  for (size_t dim : {1, 2, 3, 4, 5, 6, 7, 8}) {
    // Batch sizes cover empty tails, partial groups, and multi-group runs.
    for (size_t n : {1, 2, 3, 4, 5, 7, 8, 31, 64, 257}) {
      std::vector<double> weights(dim);
      for (double& w : weights) w = wgt(rng);
      Feature q(dim);
      for (double& x : q) x = val(rng);
      std::vector<Feature> cands(n, Feature(dim));
      for (Feature& f : cands) {
        for (double& x : f) x = val(rng);
      }
      ExpectAllPathsExact(q, cands, weights);
    }
  }
}

TEST(SimdKernelTest, ExtremeWeightRatios) {
  // The Tao weights span 5x; stress far beyond that — 1e12 ratios force
  // catastrophic magnitude differences between accumulation terms, where any
  // reassociation in a kernel would change the rounded sum.
  const std::vector<double> weights = {1e-9, 1.0, 1e3, 1e12};
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> val(-1e4, 1e4);
  Feature q(4);
  for (double& x : q) x = val(rng);
  std::vector<Feature> cands(97, Feature(4));
  for (Feature& f : cands) {
    for (double& x : f) x = val(rng);
  }
  ExpectAllPathsExact(q, cands, weights);
}

TEST(SimdKernelTest, DenormalsAndTinyDifferences) {
  const double denorm = std::numeric_limits<double>::denorm_min();
  const double tiny = std::numeric_limits<double>::min();  // smallest normal
  const std::vector<double> weights = {1.0, 0.5, 2.0};
  Feature q = {0.0, denorm, tiny};
  std::vector<Feature> cands = {
      {0.0, denorm, tiny},            // identical -> exactly 0
      {denorm, 0.0, -tiny},           // denormal differences
      {-denorm, 2 * denorm, tiny},    // sub-ulp spreads
      {tiny, -denorm, 4 * denorm},
      {1.0, denorm, -1.0},            // mixed normal/denormal
      {denorm, denorm, denorm},
      {0.0, 0.0, 0.0},
  };
  ExpectAllPathsExact(q, cands, weights);
}

TEST(SimdKernelTest, IdenticalFeaturesGiveExactZero) {
  const std::vector<double> weights = {0.5, 0.3, 0.2, 0.1};
  Feature q = {1.25, -3.5, 0.0625, 1e-7};
  std::vector<Feature> cands(13, q);
  const FeaturePool pool(cands);
  for (SimdLevel level : SupportedLevels()) {
    std::vector<double> out(cands.size(), -1.0);
    WeightedL2SoAAt(level)(pool.soa(), pool.stride(), cands.size(), 4,
                           q.data(), weights.data(), out.data());
    for (double d : out) EXPECT_EQ(0.0, d) << SimdLevelName(level);
  }
}

TEST(FeaturePoolTest, LayoutAndRoundTrip) {
  std::vector<Feature> fs = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const FeaturePool pool(fs);
  EXPECT_EQ(3u, pool.size());
  EXPECT_EQ(2u, pool.dim());
  EXPECT_EQ(4u, pool.stride());  // padded to the widest group
  for (size_t j = 0; j < 3; ++j) {
    for (size_t d = 0; d < 2; ++d) {
      EXPECT_EQ(fs[j][d], pool.At(j, d));
      EXPECT_EQ(fs[j][d], pool.soa()[d * pool.stride() + j]);
    }
  }
  // Padding lanes are finite (zero) so full-width loads are safe.
  EXPECT_EQ(0.0, pool.soa()[0 * pool.stride() + 3]);
  EXPECT_EQ(0.0, pool.soa()[1 * pool.stride() + 3]);
  Feature back;
  pool.CopyTo(1, &back);
  EXPECT_EQ(fs[1], back);
}

TEST(FeaturePoolTest, EmptyPool) {
  const FeaturePool pool{std::vector<Feature>{}};
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(0u, pool.size());
  // BatchDistance on an empty pool is a no-op on every metric.
  const WeightedEuclidean metric = WeightedEuclidean::Euclidean(2);
  metric.BatchDistance({0.0, 0.0}, pool, nullptr);
}

TEST(SimdKernelTest, DefaultBatchPathMatchesScalarForOtherMetrics) {
  // Non-Euclidean metrics take the generic loop; results equal Distance.
  ManhattanDistance metric;
  std::vector<Feature> cands = {{1.0, 2.0}, {-3.0, 0.5}, {0.0, 0.0}};
  const FeaturePool pool(cands);
  Feature q = {0.25, -1.5};
  std::vector<double> out(cands.size());
  metric.BatchDistance(q, pool, out.data());
  for (size_t j = 0; j < cands.size(); ++j) {
    EXPECT_EQ(metric.Distance(q, cands[j]), out[j]);
  }
}

}  // namespace
}  // namespace elink
