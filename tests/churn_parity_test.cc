// Convergence oracle for churn-aware maintenance (the ISSUE-6 acceptance
// gate): across fuzzed churn-only scenarios, after the self-healing protocol
// quiesces the live-view clustering must still be a valid clustering
// (Definition 1 on the live topology), the query stack rebuilt from it must
// satisfy the M-tree invariants and answer range queries oracle-exactly, and
// a from-scratch engine recomputation over the post-churn topology must
// agree query for query.
//
// The scenarios run pure topology churn — static features, no fault
// injection — so the only force reshaping the clustering is churn repair
// itself.  With merge_fraction = 0.5 every churn-era adoption lands within
// delta/2 of its new root's feature, so any member pair is within
// delta (construction) + delta/2 (adoptee) of each other: the maintained
// live clustering is a 1.5*delta-clustering by composition, and that is the
// bound the oracle checks.
#include <gtest/gtest.h>

#include <vector>

#include "check/invariants.h"
#include "check/scenario.h"
#include "cluster/elink.h"
#include "cluster/maintenance_protocol.h"
#include "common/rng.h"
#include "index/backbone.h"
#include "index/mtree.h"
#include "index/range_query.h"
#include "sim/graph.h"

namespace elink {
namespace check {
namespace {

/// The live view of a quiesced maintenance session, with ids compacted to
/// 0..m-1 so the engine stack can be rebuilt on it directly.
struct LiveView {
  Topology topology;
  std::vector<Feature> features;
  Clustering clustering;
};

LiveView CompactLiveView(const DistributedMaintenance& dm,
                         const Scenario& s) {
  const int n = s.topology.num_nodes();
  const std::vector<char> live = dm.LiveMask();
  const auto live_adj = dm.LiveAdjacency();
  const Clustering full = dm.CurrentClustering();
  std::vector<int> remap(n, -1);
  LiveView view;
  for (int i = 0; i < n; ++i) {
    if (!live[i]) continue;
    remap[i] = static_cast<int>(view.topology.positions.size());
    view.topology.positions.push_back(s.topology.positions[i]);
    view.features.push_back(s.features[i]);
  }
  view.topology.adjacency.resize(view.topology.positions.size());
  view.clustering.root_of.resize(view.topology.positions.size());
  for (int i = 0; i < n; ++i) {
    if (remap[i] < 0) continue;
    for (int nb : live_adj[i]) {
      if (remap[nb] >= 0) {
        view.topology.adjacency[remap[i]].push_back(remap[nb]);
      }
    }
    const int r = full.root_of[i];
    EXPECT_TRUE(r >= 0 && r < n && live[r])
        << "live node " << i << " points at absent root " << r;
    view.clustering.root_of[remap[i]] = remap[r];
  }
  return view;
}

TEST(ChurnParityTest, MaintainedClusteringMatchesEngineRecomputation) {
  ScenarioKnobs knobs;
  knobs.faults = false;
  knobs.reliable = false;
  knobs.slack = false;

  int churny = 0;       // Scenarios where churn actually fired.
  int engine_runs = 0;  // Scenarios that also ran the full engine parity.
  for (uint64_t seed = 1; seed <= 400 && (churny < 50 || engine_runs < 50);
       ++seed) {
    const Scenario s = std::move(MakeScenario(seed, knobs)).value();
    if (!s.churn.enabled()) continue;
    ++churny;
    SCOPED_TRACE(s.Describe());

    ElinkConfig ecfg;
    ecfg.delta = s.delta;
    ecfg.seed = 3;
    const ElinkResult base = std::move(
        RunElink(s.topology, s.features, *s.metric, ecfg, ElinkMode::kExplicit))
        .value();

    MaintenanceConfig mcfg;
    mcfg.delta = s.delta;
    mcfg.merge_fraction = 0.5;
    DistributedMaintenance dm(s.topology, base.clustering, s.features,
                              s.metric, mcfg, s.synchronous, s.seed,
                              FaultPlan{}, s.churn);
    dm.RunToQuiescence();
    ASSERT_EQ(dm.stats().dropped_sends(), dm.churn_drops());
    ASSERT_EQ(dm.stats().decode_errors(), 0u);
    ASSERT_TRUE(dm.ValidateRootDistanceInvariant(s.delta).ok());

    // -- The maintained clustering is a valid clustering of the live
    //    deployment (Definition 1 at the composed 1.5*delta bound). --------
    const LiveView view = CompactLiveView(dm, s);
    ASSERT_TRUE(CheckDeltaClustering(view.clustering,
                                     view.topology.adjacency, view.features,
                                     *s.metric, 1.5 * s.delta + kCheckEps)
                    .ok());

    // -- The query stack rebuilds cleanly on top of it. -------------------
    const std::vector<int> tree =
        BuildClusterTrees(view.clustering, view.topology.adjacency);
    const ClusterIndex index =
        ClusterIndex::Build(view.clustering, tree, view.features, *s.metric);
    ASSERT_TRUE(CheckMTreeInvariants(index, view.clustering, tree,
                                     view.features, *s.metric)
                    .ok());

    // The backbone (and a from-scratch ELink) need a connected deployment;
    // churn may legitimately have partitioned the survivors.
    if (!IsConnected(view.topology.adjacency)) continue;
    ++engine_runs;
    const Backbone backbone =
        Backbone::Build(view.clustering, view.topology.adjacency, nullptr,
                        &view.features, s.metric.get());
    RangeQueryEngine maintained(view.clustering, index, backbone,
                                view.features, *s.metric, s.delta);

    // -- Engine recomputation on the post-churn topology. -----------------
    const ElinkResult fresh =
        std::move(RunElink(view.topology, view.features, *s.metric, ecfg,
                           ElinkMode::kExplicit))
            .value();
    ASSERT_TRUE(CheckDeltaClustering(fresh.clustering,
                                     view.topology.adjacency, view.features,
                                     *s.metric, s.delta + kCheckEps)
                    .ok());
    const std::vector<int> fresh_tree =
        BuildClusterTrees(fresh.clustering, view.topology.adjacency);
    const ClusterIndex fresh_index = ClusterIndex::Build(
        fresh.clustering, fresh_tree, view.features, *s.metric);
    const Backbone fresh_backbone =
        Backbone::Build(fresh.clustering, view.topology.adjacency, nullptr,
                        &view.features, s.metric.get());
    RangeQueryEngine recomputed(fresh.clustering, fresh_index, fresh_backbone,
                                view.features, *s.metric, s.delta);

    // Query-for-query parity: both engines must answer oracle-exactly, so
    // maintaining incrementally loses nothing over rebuilding from scratch.
    Rng qrng = Rng(seed).Fork(77);
    const int m = view.topology.num_nodes();
    for (int t = 0; t < 3; ++t) {
      Feature q = view.features[qrng.UniformInt(m)];
      for (double& v : q) v += qrng.Uniform(-0.3, 0.3) * s.delta;
      const double r = qrng.Uniform(0.3, 1.0) * s.delta;
      const std::vector<int> oracle =
          RangeOracle(view.features, *s.metric, q, r);
      EXPECT_EQ(maintained.Query(0, q, r).matches, oracle);
      EXPECT_EQ(recomputed.Query(0, q, r).matches, oracle);
    }
  }
  EXPECT_GE(churny, 50) << "scenario generator stopped producing churn";
  EXPECT_GE(engine_runs, 50) << "too few post-churn deployments stayed "
                                "connected for the engine parity leg";
}

}  // namespace
}  // namespace check
}  // namespace elink
