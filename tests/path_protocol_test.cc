// Tests for the distributed path-query protocol: per-category cost parity
// with the centralized PathQueryEngine accounting model, identical outcomes
// on synchronous and asynchronous networks, and graceful handling of
// truncated messages.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/elink.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "data/terrain.h"
#include "index/path_query.h"
#include "index/path_query_protocol.h"

namespace elink {
namespace {

struct PathFixture {
  SensorDataset ds;
  Clustering clustering;
  std::vector<int> tree_parent;
  std::unique_ptr<ClusterIndex> index;
  std::unique_ptr<Backbone> backbone;
  double delta = 0.0;

  static PathFixture Make(SensorDataset dataset, double delta_frac) {
    PathFixture fx;
    fx.ds = std::move(dataset);
    fx.delta = delta_frac * FeatureDiameter(fx.ds);
    ElinkConfig cfg;
    cfg.delta = fx.delta;
    cfg.seed = 7;
    Result<ElinkResult> r = RunElink(fx.ds, cfg, ElinkMode::kImplicit);
    ELINK_CHECK(r.ok());
    fx.clustering = std::move(r.value().clustering);
    fx.tree_parent =
        BuildClusterTrees(fx.clustering, fx.ds.topology.adjacency);
    fx.index = std::make_unique<ClusterIndex>(ClusterIndex::Build(
        fx.clustering, fx.tree_parent, fx.ds.features, *fx.ds.metric));
    fx.backbone = std::make_unique<Backbone>(
        Backbone::Build(fx.clustering, fx.ds.topology.adjacency, nullptr,
                        &fx.ds.features, fx.ds.metric.get()));
    return fx;
  }

  DistributedPathQuery MakeProtocol(PathProtocolOptions options = {}) const {
    return DistributedPathQuery(ds.topology, clustering, *index, *backbone,
                                ds.features, ds.metric, options);
  }
  PathQueryEngine MakeEngine() const {
    return PathQueryEngine(clustering, *index, *backbone,
                           ds.topology.adjacency, ds.features, *ds.metric,
                           delta);
  }
};

SensorDataset Terrain(int n = 180) {
  TerrainConfig cfg;
  cfg.num_nodes = n;
  cfg.radio_range_fraction = 0.1;
  cfg.seed = 9;
  return std::move(MakeTerrainDataset(cfg)).value();
}

// The categories the engine's accounting model charges; the protocol must
// match them send for send and unit for unit.  (Its completion acks ride in
// the extra "path_collect" category, which the engine does not model.)
const char* const kEngineCategories[] = {"path_route", "path_backbone",
                                         "path_drilldown", "path_search",
                                         "path_trace"};

void ExpectParity(const PathQueryResult& got, const PathQueryResult& want,
                  int trial) {
  EXPECT_EQ(got.found, want.found) << "trial " << trial;
  EXPECT_EQ(got.path, want.path) << "trial " << trial;
  EXPECT_EQ(got.clusters_safe, want.clusters_safe) << "trial " << trial;
  EXPECT_EQ(got.clusters_unsafe, want.clusters_unsafe) << "trial " << trial;
  EXPECT_EQ(got.clusters_drilled, want.clusters_drilled) << "trial " << trial;
  for (const char* cat : kEngineCategories) {
    EXPECT_EQ(got.stats.units(cat), want.stats.units(cat))
        << "trial " << trial << " category " << cat;
    EXPECT_EQ(got.stats.sends(cat), want.stats.sends(cat))
        << "trial " << trial << " category " << cat;
  }
}

TEST(PathProtocolTest, MatchesEngineOnTerrain) {
  PathFixture fx = PathFixture::Make(Terrain(), 0.22);
  DistributedPathQuery protocol = fx.MakeProtocol();
  PathQueryEngine engine = fx.MakeEngine();
  const int n = fx.ds.topology.num_nodes();
  Rng rng(3);
  int found = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Feature danger = fx.ds.features[rng.UniformInt(n)];
    const double gamma = rng.Uniform(0.2, 1.5) * fx.delta;
    const int source = static_cast<int>(rng.UniformInt(n));
    const int destination = static_cast<int>(rng.UniformInt(n));
    Result<PathQueryResult> out =
        protocol.Run(source, destination, danger, gamma);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    const PathQueryResult want =
        engine.Query(source, destination, danger, gamma);
    ExpectParity(out.value(), want, trial);
    if (want.found) ++found;
  }
  EXPECT_GT(found, 0) << "trials never exercised the search phase";
}

TEST(PathProtocolTest, MatchesEngineOnAsynchronousNetworks) {
  PathFixture fx = PathFixture::Make(Terrain(), 0.22);
  PathProtocolOptions options;
  options.synchronous = false;
  options.seed = 99;
  DistributedPathQuery protocol = fx.MakeProtocol(options);
  PathQueryEngine engine = fx.MakeEngine();
  const int n = fx.ds.topology.num_nodes();
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Feature danger = fx.ds.features[rng.UniformInt(n)];
    const double gamma = rng.Uniform(0.3, 1.2) * fx.delta;
    const int source = static_cast<int>(rng.UniformInt(n));
    const int destination = static_cast<int>(rng.UniformInt(n));
    Result<PathQueryResult> out =
        protocol.Run(source, destination, danger, gamma);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    ExpectParity(out.value(),
                 engine.Query(source, destination, danger, gamma), trial);
  }
}

TEST(PathProtocolTest, SuppressedQueryCostsOnlyTheClimb) {
  PathFixture fx = PathFixture::Make(Terrain(), 0.22);
  DistributedPathQuery protocol = fx.MakeProtocol();
  PathQueryEngine engine = fx.MakeEngine();
  // Danger centered on a cluster root with gamma beyond its covering radius:
  // the whole source cluster is conclusively unsafe and the root kills the
  // query without touching the backbone.
  const int source = 0;
  const int root = fx.clustering.root_of[source];
  const Feature danger = fx.index->routing_feature(root);
  const double gamma = fx.index->covering_radius(root) + 0.25 * fx.delta;
  Result<PathQueryResult> out = protocol.Run(source, source, danger, gamma);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(out.value().found);
  EXPECT_EQ(out.value().stats.units("path_backbone"), 0u);
  EXPECT_EQ(out.value().stats.units("path_drilldown"), 0u);
  ExpectParity(out.value(), engine.Query(source, source, danger, gamma), 0);
}

TEST(PathProtocolTest, SingleClusterGrid) {
  SensorDataset ds;
  ds.topology = MakeGridTopology(4, 4);
  ds.features.assign(16, Feature{5.0});
  ds.metric =
      std::make_shared<WeightedEuclidean>(WeightedEuclidean::Euclidean(1));
  PathFixture fx = PathFixture::Make(std::move(ds), 0.5);
  DistributedPathQuery protocol = fx.MakeProtocol();
  PathQueryEngine engine = fx.MakeEngine();
  // Distant danger: every node is safe, a corner-to-corner path exists.
  Result<PathQueryResult> safe = protocol.Run(0, 15, {100.0}, 1.0);
  ASSERT_TRUE(safe.ok());
  EXPECT_TRUE(safe.value().found);
  ExpectParity(safe.value(), engine.Query(0, 15, {100.0}, 1.0), 0);
  // Danger on top of the uniform feature: everything is unsafe.
  Result<PathQueryResult> unsafe_q = protocol.Run(0, 15, {5.0}, 1.0);
  ASSERT_TRUE(unsafe_q.ok());
  EXPECT_FALSE(unsafe_q.value().found);
  ExpectParity(unsafe_q.value(), engine.Query(0, 15, {5.0}, 1.0), 1);
}

TEST(PathProtocolTest, TruncatedMessagesAreCountedNotFatal) {
  PathFixture fx = PathFixture::Make(Terrain(120), 0.25);
  const int n = fx.ds.topology.num_nodes();
  PathQueryEngine engine = fx.MakeEngine();
  Rng rng(13);
  uint64_t decode_errors = 0;
  for (int trial = 0; trial < 10; ++trial) {
    PathProtocolOptions options;
    options.seed = 1000 + trial;
    options.fault.truncate_probability = 0.7;
    DistributedPathQuery protocol = fx.MakeProtocol(options);
    const Feature danger = fx.ds.features[rng.UniformInt(n)];
    const double gamma = rng.Uniform(0.3, 1.2) * fx.delta;
    const int source = static_cast<int>(rng.UniformInt(n));
    const int destination = static_cast<int>(rng.UniformInt(n));
    Result<PathQueryResult> out =
        protocol.Run(source, destination, danger, gamma);
    // Malformed frames must surface as counted protocol errors (possibly a
    // lost query), never a crash or an engine-divergent "answer".
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    decode_errors += out.value().stats.decode_errors();
    if (out.value().found) {
      EXPECT_TRUE(engine.Query(source, destination, danger, gamma).found)
          << "trial " << trial;
    }
  }
  EXPECT_GT(decode_errors, 0u);
}

TEST(PathProtocolTest, RejectsBadEndpoints) {
  PathFixture fx = PathFixture::Make(Terrain(120), 0.25);
  DistributedPathQuery protocol = fx.MakeProtocol();
  EXPECT_FALSE(protocol.Run(-1, 0, fx.ds.features[0], 1.0).ok());
  EXPECT_FALSE(protocol.Run(0, 9999, fx.ds.features[0], 1.0).ok());
}

}  // namespace
}  // namespace elink
