// Tests for the fault-injection layer (sim/fault.h), the reliable transport
// (sim/reliable.h), and the protocols' graceful degradation under faults:
// ELink explicit mode completing despite loss and crashes, and the
// distributed range query returning flagged partial answers.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "cluster/elink.h"
#include "cluster/quadtree.h"
#include "data/terrain.h"
#include "index/backbone.h"
#include "index/mtree.h"
#include "index/query_protocol.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/reliable.h"
#include "sim/topology.h"

namespace elink {
namespace {

// -- FaultInjector ------------------------------------------------------------

TEST(FaultInjectorTest, DefaultPlanIsInert) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  FaultInjector inj(plan, 1);
  EXPECT_FALSE(inj.enabled());
}

TEST(FaultInjectorTest, CrashIntervalsAndRecovery) {
  FaultPlan plan;
  plan.node_crashes.push_back({3, 10.0, 20.0});
  plan.node_crashes.push_back({4, 5.0});  // Permanent.
  FaultInjector inj(plan, 1);
  EXPECT_TRUE(inj.enabled());
  EXPECT_FALSE(inj.IsCrashed(3, 9.9));
  EXPECT_TRUE(inj.IsCrashed(3, 10.0));
  EXPECT_TRUE(inj.IsCrashed(3, 19.9));
  EXPECT_FALSE(inj.IsCrashed(3, 20.0));  // Recovered.
  EXPECT_FALSE(inj.IsCrashed(4, 4.9));
  EXPECT_TRUE(inj.IsCrashed(4, 1e12));  // Never recovers.
  EXPECT_FALSE(inj.IsCrashed(0, 50.0));  // Unlisted nodes never crash.
}

TEST(FaultInjectorTest, LinkOutagesUndirectedAndDirected) {
  FaultPlan plan;
  plan.link_outages.push_back({0, 1, 5.0, 10.0, /*directed=*/false});
  plan.link_outages.push_back({2, 3, 0.0, 4.0, /*directed=*/true});
  FaultInjector inj(plan, 1);
  EXPECT_FALSE(inj.LinkDown(0, 1, 4.9));
  EXPECT_TRUE(inj.LinkDown(0, 1, 5.0));
  EXPECT_TRUE(inj.LinkDown(1, 0, 7.0));  // Undirected: both directions.
  EXPECT_FALSE(inj.LinkDown(0, 1, 10.0));
  EXPECT_TRUE(inj.LinkDown(2, 3, 2.0));
  EXPECT_FALSE(inj.LinkDown(3, 2, 2.0));  // Directed: reverse unaffected.
}

TEST(FaultInjectorTest, DropProbabilityZeroAndOne) {
  FaultPlan always;
  always.drop_probability = 1.0;
  FaultInjector inj1(always, 1);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(inj1.DropTransmission(0, 1, 0.0));

  FaultPlan crash_only;
  crash_only.node_crashes.push_back({7, 0.0});
  FaultInjector inj0(crash_only, 1);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(inj0.DropTransmission(0, 1, 0.0));
}

TEST(FaultInjectorTest, DropSequenceIsSeedDeterministic) {
  FaultPlan plan;
  plan.drop_probability = 0.5;
  FaultInjector a(plan, 42), b(plan, 42), c(plan, 43);
  std::vector<bool> sa, sb, sc;
  for (int i = 0; i < 200; ++i) {
    sa.push_back(a.DropTransmission(0, 1, i));
    sb.push_back(b.DropTransmission(0, 1, i));
    sc.push_back(c.DropTransmission(0, 1, i));
  }
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa, sc);  // Different seed, different stream (w.h.p.).
}

TEST(FaultInjectorTest, LinkOverrideBeatsGlobalProbability) {
  FaultPlan plan;
  plan.drop_probability = 0.0;  // Inert alone...
  plan.link_overrides.push_back({0, 1, 1.0, /*directed=*/true});
  FaultInjector inj(plan, 1);
  EXPECT_DOUBLE_EQ(inj.LinkDropProbability(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(inj.LinkDropProbability(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(inj.LinkDropProbability(2, 3), 0.0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(inj.DropTransmission(0, 1, 0.0));
    EXPECT_FALSE(inj.DropTransmission(1, 0, 0.0));
  }
}

// -- Network under faults -----------------------------------------------------

class SinkNode : public Node {
 public:
  void HandleMessage(int from, const Message& msg) override {
    (void)from;
    received.push_back(msg.type);
  }
  void HandleTimer(int timer_id) override { timers.push_back(timer_id); }
  std::vector<int> received;
  std::vector<int> timers;
};

std::unique_ptr<Network> MakeFaultyGrid(FaultPlan plan) {
  Network::Config cfg;
  cfg.seed = 5;
  cfg.fault = std::move(plan);
  auto net = std::make_unique<Network>(MakeGridTopology(3, 3), cfg);
  net->InstallNodes([](int) { return std::make_unique<SinkNode>(); });
  return net;
}

TEST(NetworkFaultTest, CrashedReceiverNeverDelivers) {
  FaultPlan plan;
  plan.node_crashes.push_back({1, 0.0});
  auto net = MakeFaultyGrid(plan);
  Message m;
  m.type = 1;
  m.category = "t";
  net->Send(0, 1, m);
  net->Send(0, 3, m);  // Healthy neighbor still works.
  net->Run();
  EXPECT_TRUE(static_cast<SinkNode*>(net->node(1))->received.empty());
  EXPECT_EQ(static_cast<SinkNode*>(net->node(3))->received.size(), 1u);
  EXPECT_EQ(net->stats().dropped_sends(), 1u);
  EXPECT_EQ(net->stats().total_sends(), 1u);  // The drop is not delivered.
  EXPECT_EQ(net->stats().dropped("t"), 1u);
}

TEST(NetworkFaultTest, CrashedSenderCannotSend) {
  FaultPlan plan;
  plan.node_crashes.push_back({0, 0.0});
  auto net = MakeFaultyGrid(plan);
  Message m;
  m.category = "t";
  net->Send(0, 1, m);
  net->Run();
  EXPECT_TRUE(static_cast<SinkNode*>(net->node(1))->received.empty());
  EXPECT_EQ(net->stats().dropped_sends(), 1u);
}

TEST(NetworkFaultTest, CrashedNodeTimersAreSuppressed) {
  FaultPlan plan;
  plan.node_crashes.push_back({2, 0.0, 10.0});
  auto net = MakeFaultyGrid(plan);
  Network* n = net.get();
  net->SetTimer(2, 5.0, 1);   // Fires while crashed: suppressed.
  net->SetTimer(2, 15.0, 2);  // Set before the crash, fires after recovery:
                              // the repair restarts the node, so this stale
                              // timer is orphaned (it used to fire, leaking
                              // pre-crash state into the new incarnation).
  // Timers set by the recovered incarnation fire normally.
  net->ScheduleAfter(12.0, [n]() { n->SetTimer(2, 3.0, 3); });
  net->Run();
  EXPECT_EQ(static_cast<SinkNode*>(net->node(2))->timers,
            (std::vector<int>{3}));
}

// Regression for the recovered-crash staleness fix: a NodeCrash with a
// finite recover_at must reset protocol state through Node::OnRestart at the
// recovery instant instead of silently resuming.  Permanent crashes never
// restart.
TEST(NetworkFaultTest, FiniteRecoveryInvokesOnRestart) {
  class RestartProbe : public SinkNode {
   public:
    void OnRestart() override { restarts.push_back(network()->Now()); }
    std::vector<double> restarts;
  };
  FaultPlan plan;
  plan.node_crashes.push_back({2, 5.0, 30.0});
  plan.node_crashes.push_back({4, 10.0});  // Permanent: no restart.
  Network::Config cfg;
  cfg.seed = 5;
  cfg.fault = std::move(plan);
  Network net(MakeGridTopology(3, 3), cfg);
  net.InstallNodes([](int) { return std::make_unique<RestartProbe>(); });
  net.SetTimer(0, 40.0, 9);  // Keeps the run alive past both recover_ats.
  net.Run();
  EXPECT_EQ(static_cast<RestartProbe*>(net.node(2))->restarts,
            (std::vector<double>{30.0}));
  EXPECT_TRUE(static_cast<RestartProbe*>(net.node(4))->restarts.empty());
}

// -- FaultInjector interval edges ---------------------------------------------

TEST(FaultInjectorTest, CrashBoundariesAreHalfOpen) {
  // [crash_at, recover_at): dead at exactly crash_at, alive at exactly
  // recover_at.
  FaultPlan plan;
  plan.node_crashes.push_back({1, 10.0, 20.0});
  FaultInjector inj(plan, 1);
  EXPECT_FALSE(inj.IsCrashed(1, std::nextafter(10.0, 0.0)));
  EXPECT_TRUE(inj.IsCrashed(1, 10.0));
  EXPECT_TRUE(inj.IsCrashed(1, std::nextafter(20.0, 0.0)));
  EXPECT_FALSE(inj.IsCrashed(1, 20.0));
}

TEST(FaultInjectorTest, OutageBoundariesAreHalfOpen) {
  FaultPlan plan;
  plan.link_outages.push_back({0, 1, 10.0, 20.0});
  FaultInjector inj(plan, 1);
  EXPECT_FALSE(inj.LinkDown(0, 1, std::nextafter(10.0, 0.0)));
  EXPECT_TRUE(inj.LinkDown(0, 1, 10.0));
  EXPECT_TRUE(inj.LinkDown(1, 0, std::nextafter(20.0, 0.0)));
  EXPECT_FALSE(inj.LinkDown(0, 1, 20.0));
}

TEST(FaultInjectorTest, OverlappingCrashIntervalsUnion) {
  // Two overlapping windows on one node behave as their union; the gap
  // between disjoint windows is alive.
  FaultPlan plan;
  plan.node_crashes.push_back({1, 10.0, 20.0});
  plan.node_crashes.push_back({1, 15.0, 25.0});
  plan.node_crashes.push_back({1, 40.0, 50.0});
  FaultInjector inj(plan, 1);
  EXPECT_TRUE(inj.IsCrashed(1, 12.0));
  EXPECT_TRUE(inj.IsCrashed(1, 20.0));  // Covered by the second window.
  EXPECT_TRUE(inj.IsCrashed(1, 24.9));
  EXPECT_FALSE(inj.IsCrashed(1, 25.0));
  EXPECT_FALSE(inj.IsCrashed(1, 30.0));  // Between windows.
  EXPECT_TRUE(inj.IsCrashed(1, 45.0));
}

TEST(NetworkFaultTest, RepairAtHorizonStillRestarts) {
  // recover_at exactly at the last queued event's time: the restart is
  // scheduled up front, so it still runs (and a timer set at the restart
  // instant by the old incarnation stays orphaned).
  class RestartProbe : public SinkNode {
   public:
    void OnRestart() override { ++restarts; }
    int restarts = 0;
  };
  FaultPlan plan;
  plan.node_crashes.push_back({2, 5.0, 30.0});
  Network::Config cfg;
  cfg.seed = 5;
  cfg.fault = std::move(plan);
  Network net(MakeGridTopology(3, 3), cfg);
  net.InstallNodes([](int) { return std::make_unique<RestartProbe>(); });
  net.SetTimer(2, 30.0, 1);  // Horizon == recover_at; pre-crash timer.
  net.Run();
  EXPECT_EQ(static_cast<RestartProbe*>(net.node(2))->restarts, 1);
  EXPECT_TRUE(static_cast<RestartProbe*>(net.node(2))->timers.empty());
}

TEST(NetworkFaultTest, OutageSeversRoutedPath) {
  // Grid 3x3: every 0 -> 8 shortest path leaves the corner over 0-1 or 0-3;
  // taking both links down severs all of them for the whole run.
  FaultPlan plan;
  plan.link_outages.push_back({0, 1, 0.0});
  plan.link_outages.push_back({0, 3, 0.0});
  auto net = MakeFaultyGrid(plan);
  Message m;
  m.category = "r";
  EXPECT_EQ(net->SendRouted(0, 8, m), 4);  // Hop count of the chosen path.
  net->Run();
  EXPECT_TRUE(static_cast<SinkNode*>(net->node(8))->received.empty());
  EXPECT_EQ(net->stats().dropped_sends(), 1u);  // Lost on the first hop...
  EXPECT_EQ(net->stats().total_sends(), 0u);    // ...before any charge.
}

TEST(NetworkFaultTest, RoutedDropChargesTraveledHopsOnly) {
  // Outage on every link into the destination corner 8 (6-8 wrong: grid
  // neighbors of 8 are 5 and 7).  The message travels until the last hop.
  FaultPlan plan;
  plan.link_outages.push_back({5, 8, 0.0});
  plan.link_outages.push_back({7, 8, 0.0});
  auto net = MakeFaultyGrid(plan);
  Message m;
  m.category = "r";
  net->SendRouted(0, 8, m);
  net->Run();
  EXPECT_TRUE(static_cast<SinkNode*>(net->node(8))->received.empty());
  EXPECT_EQ(net->stats().dropped_sends(), 1u);
  EXPECT_EQ(net->stats().sends("r"), 3u);  // Three hops traveled, last lost.
}

// -- ReliableChannel ----------------------------------------------------------

class ReliableNode : public Node {
 public:
  explicit ReliableNode(ReliableChannel::Config cfg) : cfg_(cfg) {}

  void OnInstall() override {
    channel.Attach(network(), id(), cfg_);
    channel.set_give_up(
        [this](int to, const Message& msg) { gave_up.push_back({to, msg.type}); });
  }

  void HandleMessage(int from, const Message& msg) override {
    if (channel.OnMessage(from, msg)) return;
    received.push_back({from, msg.type});
  }

  void HandleTimer(int timer_id) override {
    if (channel.OnTimer(timer_id)) return;
  }

  ReliableChannel channel;
  std::vector<std::pair<int, int>> received;  // (from, type)
  std::vector<std::pair<int, int>> gave_up;   // (to, type)

 private:
  ReliableChannel::Config cfg_;
};

std::unique_ptr<Network> MakeReliableGrid(FaultPlan plan,
                                          ReliableChannel::Config ccfg) {
  Network::Config cfg;
  cfg.seed = 11;
  cfg.fault = std::move(plan);
  auto net = std::make_unique<Network>(MakeGridTopology(3, 3), cfg);
  net->InstallNodes(
      [&](int) { return std::make_unique<ReliableNode>(ccfg); });
  return net;
}

TEST(ReliableChannelTest, DeliversEverythingUnderHeavyLoss) {
  FaultPlan plan;
  plan.drop_probability = 0.4;
  ReliableChannel::Config ccfg;
  ccfg.rto = 4.0;
  ccfg.max_retries = 12;
  auto net = MakeReliableGrid(plan, ccfg);
  auto* sender = static_cast<ReliableNode*>(net->node(0));
  const int kMessages = 25;
  for (int i = 0; i < kMessages; ++i) {
    Message m;
    m.type = 1000 + i;
    m.category = "data";
    sender->channel.Send(1, m);
  }
  net->Run();
  auto* receiver = static_cast<ReliableNode*>(net->node(1));
  // Every message arrives exactly once, in spite of 40% loss each way.
  ASSERT_EQ(receiver->received.size(), static_cast<size_t>(kMessages));
  std::set<int> types;
  for (const auto& [from, type] : receiver->received) types.insert(type);
  EXPECT_EQ(types.size(), static_cast<size_t>(kMessages));
  EXPECT_GT(sender->channel.retransmissions(), 0u);
  EXPECT_EQ(sender->channel.in_flight(), 0u);
  EXPECT_TRUE(sender->gave_up.empty());
  // The overhead is visible in the ledger under the derived categories.
  EXPECT_GT(net->stats().units("data.retx") + net->stats().dropped("data.retx"),
            0u);
  EXPECT_GT(net->stats().units("data.ack") + net->stats().dropped("data.ack"),
            0u);
}

TEST(ReliableChannelTest, RetransmitsAcrossOutageWindow) {
  FaultPlan plan;
  plan.link_outages.push_back({0, 1, 0.0, 10.0});
  ReliableChannel::Config ccfg;
  ccfg.rto = 4.0;
  ccfg.backoff = 2.0;
  ccfg.max_retries = 5;
  auto net = MakeReliableGrid(plan, ccfg);
  auto* sender = static_cast<ReliableNode*>(net->node(0));
  Message m;
  m.type = 7;
  m.category = "data";
  sender->channel.Send(1, m);  // t=0 lost, t=4 lost, t=12 delivered.
  net->Run();
  auto* receiver = static_cast<ReliableNode*>(net->node(1));
  ASSERT_EQ(receiver->received.size(), 1u);
  EXPECT_EQ(receiver->received[0].second, 7);
  EXPECT_GE(sender->channel.retransmissions(), 2u);
  EXPECT_EQ(sender->channel.in_flight(), 0u);
}

TEST(ReliableChannelTest, SuppressesDuplicatesWhenAcksAreLost) {
  // Data 0 -> 1 flows; the reverse direction is down until t = 9, so the
  // first acks die and the sender retransmits.  The receiver must hand the
  // protocol exactly one copy and re-ack the duplicates.
  FaultPlan plan;
  plan.link_outages.push_back({1, 0, 0.0, 9.0, /*directed=*/true});
  ReliableChannel::Config ccfg;
  ccfg.rto = 4.0;
  ccfg.backoff = 2.0;
  ccfg.max_retries = 6;
  auto net = MakeReliableGrid(plan, ccfg);
  auto* sender = static_cast<ReliableNode*>(net->node(0));
  Message m;
  m.type = 9;
  m.category = "data";
  sender->channel.Send(1, m);
  net->Run();
  auto* receiver = static_cast<ReliableNode*>(net->node(1));
  EXPECT_EQ(receiver->received.size(), 1u);  // Duplicates swallowed.
  EXPECT_GE(sender->channel.retransmissions(), 1u);
  EXPECT_EQ(sender->channel.in_flight(), 0u);  // A late ack finally landed.
  EXPECT_TRUE(sender->gave_up.empty());
}

TEST(ReliableChannelTest, GivesUpOnCrashedReceiver) {
  FaultPlan plan;
  plan.node_crashes.push_back({1, 0.0});
  ReliableChannel::Config ccfg;
  ccfg.rto = 2.0;
  ccfg.max_retries = 3;
  auto net = MakeReliableGrid(plan, ccfg);
  auto* sender = static_cast<ReliableNode*>(net->node(0));
  Message m;
  m.type = 13;
  m.category = "data";
  sender->channel.Send(1, m);
  net->Run();
  ASSERT_EQ(sender->gave_up.size(), 1u);
  EXPECT_EQ(sender->gave_up[0], (std::pair<int, int>{1, 13}));
  EXPECT_EQ(sender->channel.gave_up(), 1u);
  EXPECT_EQ(sender->channel.in_flight(), 0u);
  EXPECT_EQ(sender->channel.retransmissions(), 3u);
}

TEST(ReliableChannelTest, RoutedSendAcksEndToEnd) {
  FaultPlan plan;
  plan.drop_probability = 0.3;
  ReliableChannel::Config ccfg;
  ccfg.rto = 12.0;  // > 2 * diameter of the 3x3 grid.
  ccfg.max_retries = 12;
  auto net = MakeReliableGrid(plan, ccfg);
  auto* sender = static_cast<ReliableNode*>(net->node(0));
  Message m;
  m.type = 21;
  m.category = "data";
  sender->channel.SendRouted(8, m);
  net->Run();
  auto* receiver = static_cast<ReliableNode*>(net->node(8));
  ASSERT_EQ(receiver->received.size(), 1u);
  EXPECT_EQ(receiver->received[0].second, 21);
  EXPECT_EQ(sender->channel.in_flight(), 0u);
}

// -- ELink under faults -------------------------------------------------------

SensorDataset SmallTerrain(int num_nodes) {
  TerrainConfig tcfg;
  tcfg.num_nodes = num_nodes;
  tcfg.radio_range_fraction = 0.14;
  tcfg.heightmap_exponent = 5;
  auto ds = MakeTerrainDataset(tcfg);
  EXPECT_TRUE(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

TEST(ElinkFaultTest, FaultedRunsAreBitReproducible) {
  const SensorDataset ds = SmallTerrain(90);
  ElinkConfig cfg;
  cfg.delta = 0.35 * FeatureDiameter(ds);
  cfg.seed = 3;
  cfg.fault.drop_probability = 0.1;
  cfg.fault.node_crashes.push_back({ds.topology.num_nodes() - 1, 12.0});
  cfg.reliable_transport = true;
  cfg.completion_timeout = 200.0;
  auto a = RunElink(ds, cfg, ElinkMode::kExplicit);
  auto b = RunElink(ds, cfg, ElinkMode::kExplicit);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a.value().clustering.root_of, b.value().clustering.root_of);
  EXPECT_EQ(a.value().stats.ToString(), b.value().stats.ToString());
  EXPECT_DOUBLE_EQ(a.value().completion_time, b.value().completion_time);
  EXPECT_EQ(a.value().total_switches, b.value().total_switches);
  EXPECT_EQ(a.value().unclustered_nodes, b.value().unclustered_nodes);
}

TEST(ElinkFaultTest, ExplicitModeSurvivesLossAndACrashedSentinel) {
  const SensorDataset ds = SmallTerrain(90);
  const QuadtreeDecomposition quad = QuadtreeDecomposition::Build(ds.topology);
  // Crash a deepest-level sentinel (not the coordinator) mid-run.
  const int victim = quad.sentinel_set(quad.num_levels() - 1).front();
  ASSERT_NE(victim, quad.root());

  ElinkConfig cfg;
  cfg.delta = 0.35 * FeatureDiameter(ds);
  cfg.seed = 3;
  cfg.fault.drop_probability = 0.10;
  cfg.fault.node_crashes.push_back({victim, 10.0});
  cfg.reliable_transport = true;
  cfg.reliable.rto = 8.0;
  cfg.reliable.max_retries = 4;
  cfg.completion_timeout = 150.0;
  auto r = RunElink(ds, cfg, ElinkMode::kExplicit);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ElinkResult& res = r.value();
  // Every node has an assignment (unreached ones come back as singletons).
  for (int i = 0; i < ds.topology.num_nodes(); ++i) {
    EXPECT_GE(res.clustering.root_of[i], 0);
  }
  EXPECT_GT(res.completion_time, 0.0);
  // The reliability layer paid for something: either retransmissions or
  // transport acks show up in the ledger.
  uint64_t overhead = 0;
  for (const auto& [cat, units] : res.stats.units_by_category()) {
    if (cat.size() > 5 && (cat.rfind(".retx") == cat.size() - 5 ||
                           cat.rfind(".ack") == cat.size() - 4)) {
      overhead += units;
    }
  }
  EXPECT_GT(overhead, 0u);
  EXPECT_GT(res.stats.dropped_units(), 0u);
}

TEST(ElinkFaultTest, DisabledPlanMatchesFaultFreeRun) {
  const SensorDataset ds = SmallTerrain(70);
  ElinkConfig plain;
  plain.delta = 0.35 * FeatureDiameter(ds);
  plain.seed = 5;
  ElinkConfig with_inert = plain;
  with_inert.fault = FaultPlan{};  // Explicitly default: still inert.
  auto a = RunElink(ds, plain, ElinkMode::kExplicit);
  auto b = RunElink(ds, with_inert, ElinkMode::kExplicit);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().clustering.root_of, b.value().clustering.root_of);
  EXPECT_EQ(a.value().stats.ToString(), b.value().stats.ToString());
  EXPECT_TRUE(a.value().completed);
  EXPECT_EQ(a.value().unclustered_nodes, 0);
}

// -- Distributed query under faults -------------------------------------------

TEST(QueryFaultTest, CrashedSubtreeLeaderYieldsFlaggedPartialAnswer) {
  const SensorDataset ds = SmallTerrain(90);
  ElinkConfig cfg;
  cfg.delta = 0.35 * FeatureDiameter(ds);
  cfg.seed = 7;
  auto clustered = RunElink(ds, cfg, ElinkMode::kImplicit);
  ASSERT_TRUE(clustered.ok());
  const Clustering& clustering = clustered.value().clustering;
  const auto tree = BuildClusterTrees(clustering, ds.topology.adjacency);
  const ClusterIndex index =
      ClusterIndex::Build(clustering, tree, ds.features, *ds.metric);
  const Backbone backbone =
      Backbone::Build(clustering, ds.topology.adjacency, nullptr,
                      &ds.features, ds.metric.get());
  ASSERT_GE(backbone.leaders().size(), 2u) << "need a multi-cluster layout";

  // Query from inside the root leader's cluster, with a radius that reaches
  // everything, and crash one non-root leader so its whole subtree goes dark.
  const int initiator = backbone.tree_root();
  int victim = -1;
  for (int leader : backbone.leaders()) {
    if (leader != backbone.tree_root()) victim = leader;
  }
  ASSERT_GE(victim, 0);

  DistributedRangeQuery::ProtocolOptions opt;
  opt.seed = 7;
  opt.fault.node_crashes.push_back({victim, 0.0});
  opt.node_deadline = 60.0;
  opt.query_deadline = 2000.0;
  DistributedRangeQuery protocol(ds.topology, clustering, index, backbone,
                                 ds.features, ds.metric, opt);
  const double r = FeatureDiameter(ds);  // Matches every node.
  auto out = protocol.Run(initiator, ds.features[initiator], r);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out.value().answer_received);
  EXPECT_FALSE(out.value().complete);
  EXPECT_GT(out.value().unreachable_subtrees, 0);
  // The partial count is missing at least the victim's own contribution.
  EXPECT_LT(out.value().match_count, ds.topology.num_nodes());
  EXPECT_GT(out.value().match_count, 0);
}

TEST(QueryFaultTest, ReliableTransportRecoversExactAnswerUnderLoss) {
  const SensorDataset ds = SmallTerrain(90);
  ElinkConfig cfg;
  cfg.delta = 0.35 * FeatureDiameter(ds);
  cfg.seed = 7;
  auto clustered = RunElink(ds, cfg, ElinkMode::kImplicit);
  ASSERT_TRUE(clustered.ok());
  const Clustering& clustering = clustered.value().clustering;
  const auto tree = BuildClusterTrees(clustering, ds.topology.adjacency);
  const ClusterIndex index =
      ClusterIndex::Build(clustering, tree, ds.features, *ds.metric);
  const Backbone backbone =
      Backbone::Build(clustering, ds.topology.adjacency, nullptr,
                      &ds.features, ds.metric.get());

  const int initiator = backbone.tree_root();
  const double r = FeatureDiameter(ds);  // Matches every node.

  // Truth from the fault-free run.
  DistributedRangeQuery::ProtocolOptions clean;
  clean.seed = 7;
  DistributedRangeQuery oracle(ds.topology, clustering, index, backbone,
                               ds.features, ds.metric, clean);
  auto truth = oracle.Run(initiator, ds.features[initiator], r);
  ASSERT_TRUE(truth.ok());
  ASSERT_EQ(truth.value().match_count, ds.topology.num_nodes());

  // 15% i.i.d. loss, no crashes: every retransmission eventually lands, so
  // the reliable transport must reassemble the exact, complete answer well
  // before the generous deadlines fire.
  DistributedRangeQuery::ProtocolOptions lossy;
  lossy.seed = 7;
  lossy.fault.drop_probability = 0.15;
  lossy.reliable_transport = true;
  lossy.reliable.rto = 30.0;
  lossy.reliable.backoff = 1.5;
  lossy.reliable.max_retries = 10;
  lossy.node_deadline = 2000.0;
  lossy.query_deadline = 20000.0;
  DistributedRangeQuery protocol(ds.topology, clustering, index, backbone,
                                 ds.features, ds.metric, lossy);
  auto out = protocol.Run(initiator, ds.features[initiator], r);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out.value().answer_received);
  EXPECT_TRUE(out.value().complete);
  EXPECT_EQ(out.value().unreachable_subtrees, 0);
  EXPECT_EQ(out.value().match_count, truth.value().match_count);
  // The loss actually bit (something was dropped and retransmitted).
  EXPECT_GT(out.value().stats.dropped_sends(), 0u);
  uint64_t retx = 0;
  for (const auto& [cat, units] : out.value().stats.units_by_category()) {
    if (cat.ends_with(".retx")) retx += units;
  }
  EXPECT_GT(retx, 0u);
}

TEST(QueryFaultTest, FaultFreeOptionsMatchBackCompatConstructor) {
  const SensorDataset ds = SmallTerrain(70);
  ElinkConfig cfg;
  cfg.delta = 0.35 * FeatureDiameter(ds);
  cfg.seed = 7;
  auto clustered = RunElink(ds, cfg, ElinkMode::kImplicit);
  ASSERT_TRUE(clustered.ok());
  const Clustering& clustering = clustered.value().clustering;
  const auto tree = BuildClusterTrees(clustering, ds.topology.adjacency);
  const ClusterIndex index =
      ClusterIndex::Build(clustering, tree, ds.features, *ds.metric);
  const Backbone backbone =
      Backbone::Build(clustering, ds.topology.adjacency, nullptr,
                      &ds.features, ds.metric.get());

  DistributedRangeQuery::ProtocolOptions opt;
  opt.seed = 3;
  DistributedRangeQuery with_options(ds.topology, clustering, index, backbone,
                                     ds.features, ds.metric, opt);
  DistributedRangeQuery back_compat(ds.topology, clustering, index, backbone,
                                    ds.features, ds.metric,
                                    /*synchronous=*/true, /*seed=*/3);
  const double r = 0.5 * FeatureDiameter(ds);
  auto a = with_options.Run(0, ds.features[0], r);
  auto b = back_compat.Run(0, ds.features[0], r);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().match_count, b.value().match_count);
  EXPECT_DOUBLE_EQ(a.value().latency, b.value().latency);
  EXPECT_EQ(a.value().stats.ToString(), b.value().stats.ToString());
  EXPECT_TRUE(a.value().complete);
  EXPECT_EQ(a.value().unreachable_subtrees, 0);
}

}  // namespace
}  // namespace elink
