// Tests for the fully distributed range-query protocol: exact counts on
// synchronous and asynchronous networks, agreement with the centralized
// engine's cost model, and latency sanity.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/elink.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "data/terrain.h"
#include "index/query_protocol.h"
#include "index/range_query.h"

namespace elink {
namespace {

struct ProtocolFixture {
  SensorDataset ds;
  Clustering clustering;
  std::vector<int> tree_parent;
  std::unique_ptr<ClusterIndex> index;
  std::unique_ptr<Backbone> backbone;
  double delta = 0.0;

  static ProtocolFixture Make(SensorDataset dataset, double delta_frac) {
    ProtocolFixture fx;
    fx.ds = std::move(dataset);
    fx.delta = delta_frac * FeatureDiameter(fx.ds);
    ElinkConfig cfg;
    cfg.delta = fx.delta;
    cfg.seed = 7;
    Result<ElinkResult> r = RunElink(fx.ds, cfg, ElinkMode::kImplicit);
    ELINK_CHECK(r.ok());
    fx.clustering = std::move(r.value().clustering);
    fx.tree_parent =
        BuildClusterTrees(fx.clustering, fx.ds.topology.adjacency);
    fx.index = std::make_unique<ClusterIndex>(ClusterIndex::Build(
        fx.clustering, fx.tree_parent, fx.ds.features, *fx.ds.metric));
    fx.backbone = std::make_unique<Backbone>(
        Backbone::Build(fx.clustering, fx.ds.topology.adjacency, nullptr,
                        &fx.ds.features, fx.ds.metric.get()));
    return fx;
  }

  DistributedRangeQuery MakeProtocol(bool synchronous = true,
                                     uint64_t seed = 1) const {
    return DistributedRangeQuery(ds.topology, clustering, *index, *backbone,
                                 ds.features, ds.metric, synchronous, seed);
  }
  RangeQueryEngine MakeEngine() const {
    return RangeQueryEngine(clustering, *index, *backbone, ds.features,
                            *ds.metric, delta);
  }
};

SensorDataset Terrain(int n = 180) {
  TerrainConfig cfg;
  cfg.num_nodes = n;
  cfg.radio_range_fraction = 0.1;
  cfg.seed = 9;
  return std::move(MakeTerrainDataset(cfg)).value();
}

TEST(QueryProtocolTest, CountsMatchLinearScan) {
  ProtocolFixture fx = ProtocolFixture::Make(Terrain(), 0.22);
  DistributedRangeQuery protocol = fx.MakeProtocol();
  RangeQueryEngine engine = fx.MakeEngine();
  Rng rng(3);
  for (int trial = 0; trial < 25; ++trial) {
    const Feature q = fx.ds.features[rng.UniformInt(180)];
    const double r = rng.Uniform(0.1, 1.1) * fx.delta;
    const int initiator = static_cast<int>(rng.UniformInt(180));
    Result<DistributedQueryOutcome> out = protocol.Run(initiator, q, r);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out.value().match_count,
              static_cast<long long>(engine.LinearScan(q, r).size()))
        << "trial " << trial;
  }
}

TEST(QueryProtocolTest, WorksOnAsynchronousNetworks) {
  ProtocolFixture fx = ProtocolFixture::Make(Terrain(), 0.22);
  DistributedRangeQuery protocol =
      fx.MakeProtocol(/*synchronous=*/false, /*seed=*/99);
  RangeQueryEngine engine = fx.MakeEngine();
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    const Feature q = fx.ds.features[rng.UniformInt(180)];
    const double r = rng.Uniform(0.2, 0.9) * fx.delta;
    Result<DistributedQueryOutcome> out =
        protocol.Run(static_cast<int>(rng.UniformInt(180)), q, r);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.value().match_count,
              static_cast<long long>(engine.LinearScan(q, r).size()));
  }
}

TEST(QueryProtocolTest, CostAgreesWithEngineModel) {
  // The engine is an accounting model of exactly this protocol; totals must
  // land in the same ballpark (reply aggregation is counted slightly
  // differently: per-hop there, per-match here).
  ProtocolFixture fx = ProtocolFixture::Make(Terrain(), 0.22);
  DistributedRangeQuery protocol = fx.MakeProtocol();
  RangeQueryEngine engine = fx.MakeEngine();
  Rng rng(7);
  uint64_t protocol_total = 0, engine_total = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const Feature q = fx.ds.features[rng.UniformInt(180)];
    const double r = 0.7 * fx.delta;
    const int initiator = static_cast<int>(rng.UniformInt(180));
    Result<DistributedQueryOutcome> out = protocol.Run(initiator, q, r);
    ASSERT_TRUE(out.ok());
    protocol_total += out.value().stats.total_units();
    engine_total += engine.Query(initiator, q, r).stats.total_units();
  }
  EXPECT_GT(protocol_total, engine_total / 3);
  EXPECT_LT(protocol_total, engine_total * 3);
}

TEST(QueryProtocolTest, SingleClusterNetwork) {
  // Uniform features: one cluster; the protocol reduces to root screening.
  SensorDataset ds;
  ds.topology = MakeGridTopology(4, 4);
  ds.features.assign(16, Feature{5.0});
  ds.metric =
      std::make_shared<WeightedEuclidean>(WeightedEuclidean::Euclidean(1));
  ProtocolFixture fx = ProtocolFixture::Make(std::move(ds), 0.5);
  DistributedRangeQuery protocol = fx.MakeProtocol();
  // Everything matches.
  Result<DistributedQueryOutcome> all = protocol.Run(3, {5.0}, 1.0);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().match_count, 16);
  // Nothing matches.
  Result<DistributedQueryOutcome> none = protocol.Run(3, {100.0}, 1.0);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value().match_count, 0);
}

TEST(QueryProtocolTest, InitiatorVariantsTerminate) {
  ProtocolFixture fx = ProtocolFixture::Make(Terrain(120), 0.25);
  DistributedRangeQuery protocol = fx.MakeProtocol();
  const Feature q = fx.ds.features[0];
  // Initiator == its own cluster root.
  const int a_root = fx.clustering.root_of[0];
  Result<DistributedQueryOutcome> r1 = protocol.Run(a_root, q, fx.delta);
  ASSERT_TRUE(r1.ok());
  // Initiator == the backbone root.
  Result<DistributedQueryOutcome> r2 =
      protocol.Run(fx.backbone->tree_root(), q, fx.delta);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().match_count, r2.value().match_count);
}

TEST(QueryProtocolTest, LatencyBoundedByNetworkScale) {
  ProtocolFixture fx = ProtocolFixture::Make(Terrain(), 0.22);
  DistributedRangeQuery protocol = fx.MakeProtocol();
  Result<DistributedQueryOutcome> out =
      protocol.Run(0, fx.ds.features[0], 0.8 * fx.delta);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out.value().latency, 0.0);
  // Generous bound: a constant number of network traversals.
  const int n = fx.ds.topology.num_nodes();
  EXPECT_LT(out.value().latency, 20.0 * n);
}

TEST(QueryProtocolTest, UncorrelatedDataStillExact) {
  SyntheticConfig cfg;
  cfg.num_nodes = 150;
  cfg.seed = 41;
  ProtocolFixture fx = ProtocolFixture::Make(
      std::move(MakeSyntheticDataset(cfg)).value(), 0.35);
  DistributedRangeQuery protocol = fx.MakeProtocol();
  RangeQueryEngine engine = fx.MakeEngine();
  Rng rng(11);
  for (int trial = 0; trial < 15; ++trial) {
    const Feature q = {rng.Uniform(0.3, 0.9)};
    const double r = rng.Uniform(0.2, 0.8) * fx.delta;
    Result<DistributedQueryOutcome> out =
        protocol.Run(static_cast<int>(rng.UniformInt(150)), q, r);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.value().match_count,
              static_cast<long long>(engine.LinearScan(q, r).size()));
  }
}

TEST(QueryProtocolTest, RejectsBadArguments) {
  ProtocolFixture fx = ProtocolFixture::Make(Terrain(120), 0.25);
  DistributedRangeQuery protocol = fx.MakeProtocol();
  EXPECT_FALSE(protocol.Run(-1, fx.ds.features[0], 1.0).ok());
  EXPECT_FALSE(protocol.Run(0, fx.ds.features[0], -1.0).ok());
}

}  // namespace
}  // namespace elink
