// Tests for the ELink algorithm (paper Sections 3-5): the worked example of
// Fig. 5, validity invariants under parameter sweeps (TEST_P), implicit vs.
// explicit agreement, asynchronous operation, complexity bounds, and the
// quality relation to the exact optimum.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/exact.h"
#include "cluster/elink.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "data/tao.h"
#include "data/plume.h"
#include "data/terrain.h"
#include "metric/distance.h"
#include "sim/topology.h"

namespace elink {
namespace {

WeightedEuclidean OneDim() { return WeightedEuclidean::Euclidean(1); }

ElinkConfig BaseConfig(double delta, uint64_t seed = 1) {
  ElinkConfig cfg;
  cfg.delta = delta;
  cfg.seed = seed;
  return cfg;
}

/// Asserts the full Definition-1 validity of a run and returns it.
ElinkResult RunAndValidate(const Topology& t,
                           const std::vector<Feature>& features,
                           const DistanceMetric& metric,
                           const ElinkConfig& cfg, ElinkMode mode) {
  Result<ElinkResult> r = RunElink(t, features, metric, cfg, mode);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  const Status valid = ValidateDeltaClustering(
      r.value().clustering, t.adjacency, features, metric, cfg.delta);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  return std::move(r).value();
}

TEST(ElinkTest, SingleNodeNetwork) {
  Topology t = MakeGridTopology(1, 1);
  std::vector<Feature> f = {{0.0}};
  for (ElinkMode mode :
       {ElinkMode::kImplicit, ElinkMode::kExplicit, ElinkMode::kUnordered}) {
    const ElinkResult r = RunAndValidate(t, f, OneDim(), BaseConfig(1.0), mode);
    EXPECT_EQ(r.clustering.num_clusters(), 1);
  }
}

TEST(ElinkTest, UniformFeaturesGiveOneCluster) {
  Topology t = MakeGridTopology(4, 4);
  std::vector<Feature> f(16, Feature{5.0});
  for (ElinkMode mode : {ElinkMode::kImplicit, ElinkMode::kExplicit}) {
    const ElinkResult r = RunAndValidate(t, f, OneDim(), BaseConfig(1.0), mode);
    EXPECT_EQ(r.clustering.num_clusters(), 1) << "mode " << (int)mode;
  }
}

TEST(ElinkTest, TinyDeltaGivesSingletons) {
  Topology t = MakeGridTopology(3, 3);
  std::vector<Feature> f;
  for (int i = 0; i < 9; ++i) f.push_back({static_cast<double>(i * 10)});
  for (ElinkMode mode : {ElinkMode::kImplicit, ElinkMode::kExplicit}) {
    const ElinkResult r =
        RunAndValidate(t, f, OneDim(), BaseConfig(0.5), mode);
    EXPECT_EQ(r.clustering.num_clusters(), 9);
  }
}

TEST(ElinkTest, TwoBandsSplitAtBoundary) {
  // 1x6 path: features 0,0,0,100,100,100 and delta 10 -> exactly 2 clusters.
  Topology t = MakeGridTopology(1, 6);
  std::vector<Feature> f = {{0.0}, {0.0}, {0.0}, {100.0}, {100.0}, {100.0}};
  for (ElinkMode mode : {ElinkMode::kImplicit, ElinkMode::kExplicit}) {
    const ElinkResult r =
        RunAndValidate(t, f, OneDim(), BaseConfig(10.0), mode);
    EXPECT_EQ(r.clustering.num_clusters(), 2);
    EXPECT_TRUE(r.clustering.SameCluster(0, 2));
    EXPECT_TRUE(r.clustering.SameCluster(3, 5));
    EXPECT_FALSE(r.clustering.SameCluster(2, 3));
  }
}

TEST(ElinkTest, Figure5ExpansionSemantics) {
  // Reproduce the paper's Fig. 5 situation: a sentinel D expands with
  // delta = 6, including neighbors with d <= 3 and stopping at node C with
  // d(F_D, F_C) = 4 > 3.  Topology (communication edges):
  //   A-B, B-C, B-D, D-E, D-F, F-G  (a small tree around D).
  // Use 1-D features placed so distances *to D* match Fig. 5a:
  //   A: 3, B: 2, C: 4, D: 0, E: 3, F: 1, G: 2.
  // D sits exactly at the bounding-box center so the quadtree elects it as
  // the level-0 sentinel, reproducing "sentinel D expands first".
  Topology t;
  t.width = 4;
  t.height = 2;
  //            A        B        C        D        E        F        G
  t.positions = {{0, 0}, {1, 0}, {1, 2}, {2, 1}, {2, 2}, {3, 1}, {3, 2}};
  t.adjacency = {{1}, {0, 2, 3}, {1}, {1, 4, 5}, {3}, {3, 6}, {5}};
  std::vector<Feature> f = {{3.0}, {2.0}, {4.0}, {0.0}, {3.0}, {1.0}, {2.0}};

  ElinkConfig cfg = BaseConfig(6.0);
  const ElinkResult r =
      RunAndValidate(t, f, OneDim(), cfg, ElinkMode::kExplicit);
  const int d_root = r.clustering.root_of[3];
  // D, F, B, E, G, A end up together; C is excluded.
  for (int member : {0, 1, 3, 4, 5, 6}) {
    EXPECT_EQ(r.clustering.root_of[member], d_root) << "node " << member;
  }
  EXPECT_NE(r.clustering.root_of[2], d_root);
}

TEST(ElinkTest, ImplicitRequiresSynchronousNetwork) {
  Topology t = MakeGridTopology(2, 2);
  std::vector<Feature> f(4, Feature{0.0});
  ElinkConfig cfg = BaseConfig(1.0);
  cfg.synchronous = false;
  Result<ElinkResult> r =
      RunElink(t, f, OneDim(), cfg, ElinkMode::kImplicit);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ElinkTest, RejectsInvalidArguments) {
  Topology t = MakeGridTopology(2, 2);
  std::vector<Feature> f(4, Feature{0.0});
  ElinkConfig bad_delta = BaseConfig(-1.0);
  EXPECT_FALSE(RunElink(t, f, OneDim(), bad_delta, ElinkMode::kImplicit).ok());
  ElinkConfig bad_slack = BaseConfig(1.0);
  bad_slack.slack = 0.7;
  EXPECT_FALSE(RunElink(t, f, OneDim(), bad_slack, ElinkMode::kImplicit).ok());
  std::vector<Feature> wrong_size(3, Feature{0.0});
  EXPECT_FALSE(
      RunElink(t, wrong_size, OneDim(), BaseConfig(1.0), ElinkMode::kImplicit)
          .ok());
}

TEST(ElinkTest, ImplicitAndExplicitAgreeOnSynchronousNetworks) {
  // The paper asserts both techniques output the same clusters; our explicit
  // variant adds a settled-switch restriction (DESIGN.md), so cluster
  // *counts* must agree closely and both must be valid.
  Rng seed_rng(7);
  for (int trial = 0; trial < 4; ++trial) {
    SyntheticConfig scfg;
    scfg.num_nodes = 120;
    scfg.seed = 100 + trial;
    Result<SensorDataset> ds = MakeSyntheticDataset(scfg);
    ASSERT_TRUE(ds.ok());
    const double delta = 0.25 * FeatureDiameter(ds.value());
    ElinkConfig cfg = BaseConfig(delta, 50 + trial);
    const ElinkResult imp = RunAndValidate(
        ds.value().topology, ds.value().features, *ds.value().metric, cfg,
        ElinkMode::kImplicit);
    const ElinkResult exp = RunAndValidate(
        ds.value().topology, ds.value().features, *ds.value().metric, cfg,
        ElinkMode::kExplicit);
    const int ci = imp.clustering.num_clusters();
    const int ce = exp.clustering.num_clusters();
    EXPECT_LE(std::abs(ci - ce), std::max(2, ci / 10))
        << "trial " << trial << ": implicit " << ci << " explicit " << ce;
  }
}

TEST(ElinkTest, ExplicitWorksOnAsynchronousNetworks) {
  SyntheticConfig scfg;
  scfg.num_nodes = 100;
  scfg.seed = 77;
  Result<SensorDataset> ds = MakeSyntheticDataset(scfg);
  ASSERT_TRUE(ds.ok());
  const double delta = 0.3 * FeatureDiameter(ds.value());
  ElinkConfig cfg = BaseConfig(delta, 3);
  cfg.synchronous = false;
  const ElinkResult r =
      RunAndValidate(ds.value().topology, ds.value().features,
                     *ds.value().metric, cfg, ElinkMode::kExplicit);
  EXPECT_GT(r.clustering.num_clusters(), 0);
}

TEST(ElinkTest, ExplicitCostsMoreThanImplicit) {
  // Fig. 13: the explicit technique pays for its synchronization.
  SyntheticConfig scfg;
  scfg.num_nodes = 200;
  scfg.seed = 9;
  Result<SensorDataset> ds = MakeSyntheticDataset(scfg);
  ASSERT_TRUE(ds.ok());
  const double delta = 0.3 * FeatureDiameter(ds.value());
  ElinkConfig cfg = BaseConfig(delta, 5);
  const ElinkResult imp =
      RunAndValidate(ds.value().topology, ds.value().features,
                     *ds.value().metric, cfg, ElinkMode::kImplicit);
  const ElinkResult exp =
      RunAndValidate(ds.value().topology, ds.value().features,
                     *ds.value().metric, cfg, ElinkMode::kExplicit);
  EXPECT_GT(exp.stats.total_units(), imp.stats.total_units());
  // Implicit mode sends only expand messages.
  EXPECT_EQ(imp.stats.units("ack1"), 0u);
  EXPECT_EQ(imp.stats.units("phase1"), 0u);
  EXPECT_GT(exp.stats.units("phase1"), 0u);
  EXPECT_GT(exp.stats.units("start"), 0u);
}

TEST(ElinkTest, MessageComplexityLinearInN) {
  // Theorem 2: implicit ELink sends O(N) messages; verify messages-per-node
  // does not grow across a 4x size range.
  std::vector<double> per_node;
  for (int n : {100, 200, 400}) {
    SyntheticConfig scfg;
    scfg.num_nodes = n;
    scfg.seed = 1000 + n;
    Result<SensorDataset> ds = MakeSyntheticDataset(scfg);
    ASSERT_TRUE(ds.ok());
    const double delta = 0.3 * FeatureDiameter(ds.value());
    ElinkConfig cfg = BaseConfig(delta, n);
    const ElinkResult r =
        RunAndValidate(ds.value().topology, ds.value().features,
                       *ds.value().metric, cfg, ElinkMode::kImplicit);
    per_node.push_back(static_cast<double>(r.stats.total_units()) / n);
    // Hard bound from Theorem 2: d(c+1)N expand messages.
    const double bound = ds.value().topology.max_degree() *
                         (cfg.max_switches + 1.0) * n;
    EXPECT_LE(r.stats.total_units(), bound);
  }
  EXPECT_LT(per_node.back(), per_node.front() * 2.0);
}

TEST(ElinkTest, CompletionTimeWithinTheorem2Bound) {
  // T <= 2 kappa alpha, with kappa = (1 + gamma) sqrt(N / 2).
  for (int side : {8, 12}) {
    Topology t = MakeGridTopology(side, side);
    std::vector<Feature> f(t.num_nodes(), Feature{0.0});
    ElinkConfig cfg = BaseConfig(1.0);
    const ElinkResult r =
        RunAndValidate(t, f, OneDim(), cfg, ElinkMode::kImplicit);
    const double kappa = (1.0 + cfg.gamma) * std::sqrt(t.num_nodes() / 2.0);
    EXPECT_LE(r.completion_time, 2.0 * kappa * r.num_levels + 1e-9);
  }
}

TEST(ElinkTest, UnorderedFasterButNoBetterQuality) {
  SyntheticConfig scfg;
  scfg.num_nodes = 200;
  scfg.seed = 31;
  Result<SensorDataset> ds = MakeSyntheticDataset(scfg);
  ASSERT_TRUE(ds.ok());
  const double delta = 0.3 * FeatureDiameter(ds.value());
  ElinkConfig cfg = BaseConfig(delta, 8);
  const ElinkResult ordered =
      RunAndValidate(ds.value().topology, ds.value().features,
                     *ds.value().metric, cfg, ElinkMode::kImplicit);
  const ElinkResult unordered =
      RunAndValidate(ds.value().topology, ds.value().features,
                     *ds.value().metric, cfg, ElinkMode::kUnordered);
  // Section 5's closing remark: O(sqrt N) time, worse quality.
  EXPECT_LT(unordered.completion_time, ordered.completion_time);
  EXPECT_GE(unordered.clustering.num_clusters(),
            ordered.clustering.num_clusters());
}

TEST(ElinkTest, NeverWorseThanSingletonsAndAtLeastOptimal) {
  // Small instances: optimal count <= ELink count <= N.
  Rng rng(41);
  for (int trial = 0; trial < 5; ++trial) {
    Result<Topology> t = MakeRandomTopology(9, 3.0, 1.5, &rng);
    ASSERT_TRUE(t.ok());
    std::vector<Feature> f;
    for (int i = 0; i < 9; ++i) f.push_back({rng.Uniform(0, 10)});
    const double delta = 4.0;
    Result<Clustering> opt =
        ExactOptimalClustering(t.value().adjacency, f, OneDim(), delta);
    ASSERT_TRUE(opt.ok());
    const ElinkResult r = RunAndValidate(t.value(), f, OneDim(),
                                         BaseConfig(delta, 100 + trial),
                                         ElinkMode::kExplicit);
    EXPECT_GE(r.clustering.num_clusters(), opt.value().num_clusters());
    EXPECT_LE(r.clustering.num_clusters(), 9);
  }
}

TEST(ElinkTest, SlackTightensEffectiveDelta) {
  // With slack, clustering uses delta - 2*slack: more clusters, and the
  // tighter compactness holds.
  Topology t = MakeGridTopology(1, 8);
  std::vector<Feature> f;
  for (int i = 0; i < 8; ++i) f.push_back({i * 1.0});
  ElinkConfig no_slack = BaseConfig(4.0, 3);
  ElinkConfig with_slack = BaseConfig(4.0, 3);
  with_slack.slack = 1.0;  // Effective delta 2.
  const ElinkResult loose =
      RunAndValidate(t, f, OneDim(), no_slack, ElinkMode::kExplicit);
  Result<ElinkResult> tight_r =
      RunElink(t, f, OneDim(), with_slack, ElinkMode::kExplicit);
  ASSERT_TRUE(tight_r.ok());
  EXPECT_GE(tight_r.value().clustering.num_clusters(),
            loose.clustering.num_clusters());
  // The slack run satisfies the *tighter* threshold.
  EXPECT_TRUE(ValidateDeltaClustering(tight_r.value().clustering, t.adjacency,
                                      f, OneDim(), 2.0)
                  .ok());
}

TEST(ElinkTest, DeterministicForFixedSeed) {
  SyntheticConfig scfg;
  scfg.num_nodes = 80;
  scfg.seed = 5;
  Result<SensorDataset> ds = MakeSyntheticDataset(scfg);
  ASSERT_TRUE(ds.ok());
  ElinkConfig cfg = BaseConfig(0.3 * FeatureDiameter(ds.value()), 11);
  cfg.synchronous = false;
  Result<ElinkResult> a =
      RunElink(ds.value(), cfg, ElinkMode::kExplicit);
  Result<ElinkResult> b =
      RunElink(ds.value(), cfg, ElinkMode::kExplicit);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().clustering.root_of, b.value().clustering.root_of);
  EXPECT_EQ(a.value().stats.total_units(), b.value().stats.total_units());
}

TEST(ElinkTest, ImplicitScheduleMatchesFormulas) {
  const ImplicitSchedule s = ComputeImplicitSchedule(128, 4, 0.3);
  EXPECT_NEAR(s.kappa, 1.3 * std::sqrt(64.0), 1e-12);
  EXPECT_NEAR(s.window[0], s.kappa, 1e-12);
  EXPECT_NEAR(s.window[1], s.kappa * 1.5, 1e-12);
  EXPECT_NEAR(s.window[2], s.kappa * 1.75, 1e-12);
  EXPECT_NEAR(s.start[0], 0.0, 1e-12);
  EXPECT_NEAR(s.start[2], s.window[0] + s.window[1], 1e-12);
  // Windows increase and are bounded by 2 kappa (Theorem 2's proof).
  for (size_t l = 0; l + 1 < s.window.size(); ++l) {
    EXPECT_LT(s.window[l], s.window[l + 1]);
  }
  EXPECT_LT(s.window.back(), 2.0 * s.kappa);
}

// -- Property sweep: every mode x dataset x delta yields a valid clustering --

struct SweepParam {
  int mode;           // 0 implicit, 1 explicit, 2 unordered, 3 explicit-async.
  int dataset;        // 0 synthetic, 1 tao, 2 terrain, 3 plume.
  double delta_frac;  // Fraction of the feature diameter.
};

std::string SweepParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  static const char* const modes[] = {"Implicit", "Explicit", "Unordered",
                                      "ExplicitAsync"};
  static const char* const datasets[] = {"Synthetic", "Tao", "Terrain",
                                         "Plume"};
  return std::string(modes[info.param.mode]) + datasets[info.param.dataset] +
         "D" + std::to_string(static_cast<int>(info.param.delta_frac * 100));
}

class ElinkSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ElinkSweepTest, ProducesValidDeltaClustering) {
  const SweepParam p = GetParam();
  SensorDataset ds;
  switch (p.dataset) {
    case 0: {
      SyntheticConfig cfg;
      cfg.num_nodes = 150;
      cfg.seed = 23;
      ds = std::move(MakeSyntheticDataset(cfg)).value();
      break;
    }
    case 1: {
      TaoConfig cfg;
      cfg.measurements_per_day = 48;
      cfg.train_days = 8;
      cfg.eval_days = 1;
      ds = std::move(MakeTaoDataset(cfg)).value();
      break;
    }
    case 2: {
      TerrainConfig cfg;
      cfg.num_nodes = 200;
      cfg.radio_range_fraction = 0.1;
      ds = std::move(MakeTerrainDataset(cfg)).value();
      break;
    }
    default: {
      PlumeConfig cfg;
      cfg.num_nodes = 180;
      cfg.radio_range_fraction = 0.12;
      ds = std::move(MakePlumeDataset(cfg)).value();
      break;
    }
  }
  ElinkConfig cfg = BaseConfig(p.delta_frac * FeatureDiameter(ds), 7);
  ElinkMode mode = ElinkMode::kImplicit;
  if (p.mode == 1 || p.mode == 3) mode = ElinkMode::kExplicit;
  if (p.mode == 2) mode = ElinkMode::kUnordered;
  if (p.mode == 3) cfg.synchronous = false;

  Result<ElinkResult> r = RunElink(ds, cfg, mode);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Status valid =
      ValidateDeltaClustering(r.value().clustering, ds.topology.adjacency,
                              ds.features, *ds.metric, cfg.delta);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_GE(r.value().clustering.num_clusters(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    ModesDatasetsDeltas, ElinkSweepTest,
    ::testing::Values(
        SweepParam{0, 0, 0.15}, SweepParam{0, 0, 0.4}, SweepParam{0, 1, 0.2},
        SweepParam{0, 1, 0.5}, SweepParam{0, 2, 0.15}, SweepParam{0, 2, 0.4},
        SweepParam{1, 0, 0.15}, SweepParam{1, 0, 0.4}, SweepParam{1, 1, 0.2},
        SweepParam{1, 1, 0.5}, SweepParam{1, 2, 0.15}, SweepParam{1, 2, 0.4},
        SweepParam{2, 0, 0.25}, SweepParam{2, 1, 0.3}, SweepParam{2, 2, 0.25},
        SweepParam{3, 0, 0.25}, SweepParam{3, 1, 0.3}, SweepParam{3, 2, 0.25},
        SweepParam{0, 3, 0.2}, SweepParam{1, 3, 0.3}, SweepParam{3, 3, 0.25}),
    SweepParamName);

// -- Switch-rule ablation ------------------------------------------------------

TEST(ElinkSwitchRuleTest, LiteralFigureRuleStillValid) {
  SyntheticConfig scfg;
  scfg.num_nodes = 120;
  scfg.seed = 67;
  Result<SensorDataset> ds = MakeSyntheticDataset(scfg);
  ASSERT_TRUE(ds.ok());
  ElinkConfig cfg = BaseConfig(0.3 * FeatureDiameter(ds.value()), 2);
  cfg.literal_figure_switch_rule = true;
  Result<ElinkResult> r =
      RunElink(ds.value(), cfg, ElinkMode::kImplicit);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ValidateDeltaClustering(
                  r.value().clustering, ds.value().topology.adjacency,
                  ds.value().features, *ds.value().metric, cfg.delta)
                  .ok());
}

TEST(ElinkSwitchRuleTest, ZeroSwitchBudgetDisablesSwitching) {
  SyntheticConfig scfg;
  scfg.num_nodes = 120;
  scfg.seed = 71;
  Result<SensorDataset> ds = MakeSyntheticDataset(scfg);
  ASSERT_TRUE(ds.ok());
  ElinkConfig cfg = BaseConfig(0.3 * FeatureDiameter(ds.value()), 2);
  cfg.max_switches = 0;
  Result<ElinkResult> r = RunElink(ds.value(), cfg, ElinkMode::kImplicit);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().total_switches, 0);
}

}  // namespace
}  // namespace elink
