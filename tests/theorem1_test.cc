// Experimental validation of Theorem 1's reduction: clique cover ->
// delta-clustering.
//
// The proof maps a clique-cover instance (G = (V, E), c) to delta-clustering
// by taking CG = complete graph on V, delta = 1, and d(i, j) = 1 for edges
// of G, 2 otherwise.  A partition into m delta-clusters then corresponds
// one-to-one with a partition of G into m cliques.  These tests build both
// sides of the reduction on small graphs and confirm the optimal counts
// coincide (using the exact solvers on each side).
#include <gtest/gtest.h>

#include <vector>

#include "baselines/exact.h"
#include "common/rng.h"
#include "metric/distance.h"
#include "sim/graph.h"

namespace elink {
namespace {

/// Exact minimum clique cover by branch and bound (reference solver for the
/// "left side" of the reduction).
class CliqueCoverSolver {
 public:
  explicit CliqueCoverSolver(const std::vector<std::vector<char>>& adj)
      : adj_(adj), n_(static_cast<int>(adj.size())), assignment_(n_, -1),
        best_(n_ + 1) {}

  int MinCliques() {
    Recurse(0, 0);
    return best_;
  }

 private:
  void Recurse(int v, int used) {
    if (used >= best_) return;
    if (v == n_) {
      best_ = used;
      return;
    }
    for (int c = 0; c < used; ++c) {
      bool ok = true;
      for (int u = 0; u < v && ok; ++u) {
        if (assignment_[u] == c && !adj_[u][v]) ok = false;
      }
      if (ok) {
        assignment_[v] = c;
        Recurse(v + 1, used);
      }
    }
    assignment_[v] = used;
    Recurse(v + 1, used + 1);
    assignment_[v] = -1;
  }

  const std::vector<std::vector<char>>& adj_;
  int n_;
  std::vector<int> assignment_;
  int best_;
};

/// Builds the Theorem-1 gadget for graph `adj` and returns the optimal
/// delta-clustering count from the exact solver.
int GadgetOptimal(const std::vector<std::vector<char>>& adj) {
  const int n = static_cast<int>(adj.size());
  std::vector<std::vector<double>> table(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) table[i][j] = adj[i][j] ? 1.0 : 2.0;
    }
  }
  Result<TableMetric> metric = TableMetric::Create(table);
  EXPECT_TRUE(metric.ok());
  // CG is the complete graph, per the reduction.
  AdjacencyList cg(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) cg[i].push_back(j);
    }
  }
  std::vector<Feature> ids(n);
  for (int i = 0; i < n; ++i) ids[i] = {static_cast<double>(i)};
  Result<Clustering> opt =
      ExactOptimalClustering(cg, ids, metric.value(), /*delta=*/1.0);
  EXPECT_TRUE(opt.ok());
  return opt.value().num_clusters();
}

std::vector<std::vector<char>> EmptyGraph(int n) {
  return std::vector<std::vector<char>>(n, std::vector<char>(n, 0));
}

TEST(Theorem1Test, TriangleIsOneClique) {
  auto g = EmptyGraph(3);
  g[0][1] = g[1][0] = g[1][2] = g[2][1] = g[0][2] = g[2][0] = 1;
  EXPECT_EQ(CliqueCoverSolver(g).MinCliques(), 1);
  EXPECT_EQ(GadgetOptimal(g), 1);
}

TEST(Theorem1Test, PathNeedsTwoCliques) {
  // Path 0-1-2: cliques {0,1}, {2} (or {0},{1,2}).
  auto g = EmptyGraph(3);
  g[0][1] = g[1][0] = g[1][2] = g[2][1] = 1;
  EXPECT_EQ(CliqueCoverSolver(g).MinCliques(), 2);
  EXPECT_EQ(GadgetOptimal(g), 2);
}

TEST(Theorem1Test, FiveCycleNeedsThreeCliques) {
  // C5 has clique cover number 3 (edges only).
  auto g = EmptyGraph(5);
  for (int i = 0; i < 5; ++i) {
    g[i][(i + 1) % 5] = 1;
    g[(i + 1) % 5][i] = 1;
  }
  EXPECT_EQ(CliqueCoverSolver(g).MinCliques(), 3);
  EXPECT_EQ(GadgetOptimal(g), 3);
}

TEST(Theorem1Test, IndependentSetNeedsNCliques) {
  auto g = EmptyGraph(4);
  EXPECT_EQ(CliqueCoverSolver(g).MinCliques(), 4);
  EXPECT_EQ(GadgetOptimal(g), 4);
}

TEST(Theorem1Test, GadgetDistancesSatisfyMetricAxioms) {
  // The proof asserts d() with values {1, 2} is a metric; check it on a
  // random graph (triangle inequality holds since 2 <= 1 + 1).
  Rng rng(3);
  const int n = 7;
  auto g = EmptyGraph(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(0.5)) g[i][j] = g[j][i] = 1;
    }
  }
  std::vector<std::vector<double>> table(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) table[i][j] = g[i][j] ? 1.0 : 2.0;
    }
  }
  Result<TableMetric> metric = TableMetric::Create(table);
  ASSERT_TRUE(metric.ok());
  std::vector<Feature> ids(n);
  for (int i = 0; i < n; ++i) ids[i] = {static_cast<double>(i)};
  EXPECT_TRUE(CheckMetricAxioms(metric.value(), ids).ok());
}

TEST(Theorem1Test, ReductionAgreesOnRandomGraphs) {
  Rng rng(41);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 5 + static_cast<int>(rng.UniformInt(3));  // 5..7 nodes.
    auto g = EmptyGraph(n);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng.Bernoulli(0.45)) g[i][j] = g[j][i] = 1;
      }
    }
    EXPECT_EQ(CliqueCoverSolver(g).MinCliques(), GadgetOptimal(g))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace elink
