// Tests for the causal-tracing subsystem: graph construction from synthetic
// trace streams (parenting, depth folding, hop folding, orphan accounting),
// the exporters' determinism and ring-overflow degradation on real traced
// runs, the Chrome flow arrows, the attribution parity with MessageStats,
// the CheckCausalGraph invariant, and the check_fuzz --disable=causal knob.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "check/causal.h"
#include "check/scenario.h"
#include "cluster/elink.h"
#include "data/terrain.h"
#include "obs/causal.h"
#include "obs/trace.h"
#include "proto/wire.h"

namespace elink {
namespace {

using obs::CausalGraph;
using obs::CausalNode;
using obs::Tracer;
using CausalInfo = SimObserver::CausalInfo;

Message Msg(const std::string& category, int doubles = 0) {
  Message m;
  m.category = category;
  m.doubles.assign(static_cast<size_t>(doubles), 1.0);
  return m;
}

// -- Graph construction from synthetic streams -------------------------------

// A four-generation chain: genesis send -> deliver -> send -> deliver ->
// timer fire armed by the second delivery handler.
Tracer ChainTrace() {
  Tracer t(64);
  const Message m = Msg("expand");
  t.OnCausal(CausalInfo{0, 1, 0});
  t.OnSend(0.0, 0, 1, m, 1.0);
  t.OnCausal(CausalInfo{1, 1, 0});
  t.OnDeliver(1.0, 0, 1, m);
  t.OnCausal(CausalInfo{0, 2, 1});
  t.OnSend(1.0, 1, 2, m, 2.0);
  t.OnCausal(CausalInfo{2, 2, 0});
  t.OnDeliver(3.0, 1, 2, m);
  t.OnCausal(CausalInfo{3, 0, 2});
  t.OnTimerFire(5.0, 2, 42);
  return t;
}

TEST(CausalGraphTest, ChainComputesParentsAndDepths) {
  const Tracer t = ChainTrace();
  const CausalGraph g = CausalGraph::Build(t);
  ASSERT_EQ(g.nodes().size(), 5u);
  EXPECT_TRUE(g.complete());
  EXPECT_EQ(g.orphans(), 0u);

  const std::vector<int32_t> parents = {-1, 0, 1, 2, 3};
  const std::vector<uint32_t> depths = {0, 1, 2, 3, 4};
  const std::vector<uint32_t> msg_depths = {0, 1, 1, 2, 2};
  const std::vector<CausalNode::Kind> kinds = {
      CausalNode::Kind::kSend, CausalNode::Kind::kDeliver,
      CausalNode::Kind::kSend, CausalNode::Kind::kDeliver,
      CausalNode::Kind::kTimer};
  for (size_t i = 0; i < g.nodes().size(); ++i) {
    EXPECT_EQ(g.nodes()[i].parent, parents[i]) << "node " << i;
    EXPECT_EQ(g.nodes()[i].depth, depths[i]) << "node " << i;
    EXPECT_EQ(g.nodes()[i].msg_depth, msg_depths[i]) << "node " << i;
    EXPECT_EQ(g.nodes()[i].kind, kinds[i]) << "node " << i;
  }

  const CausalGraph::DepthStats s = g.Stats();
  EXPECT_EQ(s.max_depth, 4u);
  EXPECT_EQ(s.max_msg_depth, 2u);
  EXPECT_EQ(s.genesis, 1u);
  EXPECT_EQ(s.sends, 2u);
  EXPECT_EQ(s.delivers, 2u);
  EXPECT_EQ(s.timers, 1u);
  ASSERT_EQ(s.width_by_depth.size(), 5u);
  for (const uint64_t w : s.width_by_depth) EXPECT_EQ(w, 1u);

  // Critical path: the timer fire at t=5 is the latest end time, and its
  // chain runs all the way back to the genesis send.
  EXPECT_EQ(g.CriticalPath(), (std::vector<uint32_t>{0, 1, 2, 3, 4}));

  // Plain sends charge their own units: two "expand" control frames.
  const std::map<std::string, uint64_t> units = g.UnitsByCategory();
  ASSERT_EQ(units.count("expand"), 1u);
  EXPECT_EQ(units.at("expand"), 2u);

  // Sim node 2 saw a delivery (index 3) then a timer fire (index 4): the
  // timer is its causally-last activation.
  const std::vector<int32_t> last = g.LastActivation();
  ASSERT_EQ(last.size(), 3u);
  EXPECT_EQ(last[1], 1);
  EXPECT_EQ(last[2], 4);
}

TEST(CausalGraphTest, RoutedHopsFoldIntoClosingSend) {
  Tracer t(64);
  const Message m = Msg("route", /*doubles=*/3);  // CostUnits() == 3.
  // Route walk: two relay hops, then the closing send, then the delivery.
  t.OnCausal(CausalInfo{0, 7, 0});
  t.OnHop(0.0, 0, 1, m);
  t.OnCausal(CausalInfo{0, 7, 0});
  t.OnHop(1.0, 1, 2, m);
  t.OnCausal(CausalInfo{0, 7, 0});
  t.OnSend(0.0, 0, 2, m, 2.0);
  t.OnCausal(CausalInfo{9, 7, 0});
  t.OnDeliver(2.0, 0, 2, m);

  const CausalGraph g = CausalGraph::Build(t);
  ASSERT_EQ(g.nodes().size(), 2u);  // Hops fold; only send + deliver remain.
  const CausalNode& send = g.nodes()[0];
  EXPECT_EQ(send.kind, CausalNode::Kind::kSend);
  EXPECT_EQ(send.hops, 2u);
  EXPECT_EQ(send.units, 6u);  // Two relay transmissions x 3 units each.
  const CausalNode& deliver = g.nodes()[1];
  EXPECT_EQ(deliver.parent, 0);
  EXPECT_EQ(deliver.msg_depth, 1u);
  EXPECT_EQ(g.UnitsByCategory().at("route"), 6u);
}

TEST(CausalGraphTest, MissingCauseBecomesCountedOrphan) {
  Tracer t(8);
  // A delivery whose matching send was never recorded (as after a ring
  // overwrite): it roots a fresh subtree and is counted, not dropped.
  t.OnCausal(CausalInfo{5, 99, 0});
  t.OnDeliver(1.0, 0, 1, Msg("late"));
  const CausalGraph g = CausalGraph::Build(t);
  ASSERT_EQ(g.nodes().size(), 1u);
  EXPECT_TRUE(g.nodes()[0].orphan);
  EXPECT_EQ(g.nodes()[0].parent, -1);
  EXPECT_EQ(g.nodes()[0].depth, 0u);
  EXPECT_EQ(g.orphans(), 1u);
}

// -- CheckCausalGraph on synthetic streams ------------------------------------

TEST(CheckCausalGraphTest, FlagsDeliveryTimeDisagreeingWithSendDelay) {
  Tracer t(16);
  const Message m = Msg("x");
  t.OnCausal(CausalInfo{0, 1, 0});
  t.OnSend(0.0, 0, 1, m, 1.0);
  t.OnCausal(CausalInfo{1, 1, 0});
  t.OnDeliver(2.0, 0, 1, m);  // Arrives at 2.0; the send promised 1.0.
  MessageStats stats;
  stats.Record("x", m.CostUnits());
  EXPECT_FALSE(check::CheckCausalGraph(t, stats).ok());
}

TEST(CheckCausalGraphTest, FlagsLedgerDisagreement) {
  const Tracer t = ChainTrace();
  MessageStats empty;  // The graph attributes 2 "expand" units; ledger has 0.
  EXPECT_FALSE(check::CheckCausalGraph(t, empty).ok());
  MessageStats matching;  // Units AND bytes must both reconcile.
  const uint64_t frame = wire::FrameSize(Msg("expand"));
  matching.Record("expand", 1, frame);
  matching.Record("expand", 1, frame);
  EXPECT_TRUE(check::CheckCausalGraph(t, matching).ok())
      << check::CheckCausalGraph(t, matching).ToString();
}

// -- Real traced runs ---------------------------------------------------------

SensorDataset Terrain(int n) {
  TerrainConfig cfg;
  cfg.num_nodes = n;
  cfg.radio_range_fraction = 0.1;
  cfg.seed = 9;
  return std::move(MakeTerrainDataset(cfg)).value();
}

struct CausalRun {
  ElinkResult result;
  std::string critical_path;
  std::string collapsed_units;
  std::string collapsed_events;
  std::string chrome;
};

CausalRun RunCausalElink(uint64_t seed, size_t capacity = 1 << 16) {
  const SensorDataset ds = Terrain(80);
  ElinkConfig cfg;
  cfg.delta = 0.3 * FeatureDiameter(ds);
  cfg.seed = seed;
  Tracer tracer(capacity);
  cfg.observer = &tracer;
  Result<ElinkResult> r = RunElink(ds, cfg, ElinkMode::kExplicit);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  const CausalGraph g = CausalGraph::Build(tracer);
  CausalRun out;
  out.result = std::move(r).value();
  out.critical_path = g.CriticalPathJson();
  out.collapsed_units = g.ExportCollapsed(CausalGraph::Weight::kUnits);
  out.collapsed_events = g.ExportCollapsed(CausalGraph::Weight::kEvents);
  out.chrome = tracer.ExportChromeTrace();
  return out;
}

TEST(CausalIntegrationTest, SameSeedCausalArtifactsAreByteIdentical) {
  const CausalRun a = RunCausalElink(/*seed=*/11);
  const CausalRun b = RunCausalElink(/*seed=*/11);
  ASSERT_FALSE(a.critical_path.empty());
  ASSERT_FALSE(a.collapsed_units.empty());
  EXPECT_EQ(a.critical_path, b.critical_path);
  EXPECT_EQ(a.collapsed_units, b.collapsed_units);
  EXPECT_EQ(a.collapsed_events, b.collapsed_events);
  EXPECT_EQ(a.chrome, b.chrome);
}

TEST(CausalIntegrationTest, ChromeTraceCarriesFlowArrows) {
  const CausalRun run = RunCausalElink(/*seed=*/11);
  // Causally-annotated message journeys render as Chrome flow arrows: a
  // flow-start record at the send and a binding-point-enclosed flow-finish
  // at the matching deliver.
  EXPECT_NE(run.chrome.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(run.chrome.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(run.chrome.find("\"bp\":\"e\""), std::string::npos);
  // A complete ring exports no overflow banner.
  EXPECT_EQ(run.chrome.find("overwrote"), std::string::npos);
}

TEST(CausalIntegrationTest, AttachingTracerNeverChangesTheRun) {
  const SensorDataset ds = Terrain(80);
  ElinkConfig cfg;
  cfg.delta = 0.3 * FeatureDiameter(ds);
  cfg.seed = 11;
  Result<ElinkResult> plain = RunElink(ds, cfg, ElinkMode::kExplicit);
  ASSERT_TRUE(plain.ok());
  const CausalRun traced = RunCausalElink(/*seed=*/11);
  EXPECT_EQ(plain.value().clustering.root_of,
            traced.result.clustering.root_of);
  EXPECT_DOUBLE_EQ(plain.value().completion_time,
                   traced.result.completion_time);
  EXPECT_EQ(plain.value().stats.total_units(),
            traced.result.stats.total_units());
}

TEST(CausalIntegrationTest, AttributionMatchesMessageStatsLedger) {
  const SensorDataset ds = Terrain(80);
  ElinkConfig cfg;
  cfg.delta = 0.3 * FeatureDiameter(ds);
  cfg.seed = 11;
  Tracer tracer(1 << 16);
  cfg.observer = &tracer;
  Result<ElinkResult> r = RunElink(ds, cfg, ElinkMode::kExplicit);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(tracer.overwritten(), 0u) << "raise the test ring capacity";

  const CausalGraph g = CausalGraph::Build(tracer);
  EXPECT_EQ(g.orphans(), 0u);
  EXPECT_EQ(g.UnitsByCategory(), r.value().stats.units_by_category());
  // Bytes flow through the same attribution; every category must agree.
  const std::map<std::string, uint64_t> bytes = g.BytesByCategory();
  for (const auto& c : r.value().stats.Snapshot()) {
    if (c.bytes == 0) continue;
    ASSERT_EQ(bytes.count(c.category), 1u) << c.category;
    EXPECT_EQ(bytes.at(c.category), c.bytes) << c.category;
  }
  // And the packaged invariant agrees end to end.
  EXPECT_TRUE(check::CheckCausalGraph(tracer, r.value().stats).ok());
}

TEST(CausalIntegrationTest, OverflowedRingDegradesGracefully) {
  const SensorDataset ds = Terrain(80);
  ElinkConfig cfg;
  cfg.delta = 0.3 * FeatureDiameter(ds);
  cfg.seed = 11;
  Tracer tracer(/*capacity=*/256);  // Far too small for an 80-node run.
  cfg.observer = &tracer;
  Result<ElinkResult> r = RunElink(ds, cfg, ElinkMode::kExplicit);
  ASSERT_TRUE(r.ok());
  ASSERT_GT(tracer.overwritten(), 0u);

  // Both exporters lead with an explicit overflow banner.
  const std::string jsonl = tracer.ExportJsonl();
  EXPECT_EQ(jsonl.rfind("{\"warning\":", 0), 0u) << jsonl.substr(0, 80);
  EXPECT_NE(tracer.ExportChromeTrace().find("otherData"), std::string::npos);

  const CausalGraph g = CausalGraph::Build(tracer);
  EXPECT_FALSE(g.complete());
  EXPECT_EQ(g.overwritten(), tracer.overwritten());
  EXPECT_EQ(g.ExportCollapsed().rfind("# warning:", 0), 0u);
  // The invariant degrades to structural checks instead of failing on the
  // truncated window.
  EXPECT_TRUE(check::CheckCausalGraph(tracer, r.value().stats).ok())
      << check::CheckCausalGraph(tracer, r.value().stats).ToString();
}

// -- check_fuzz knob ----------------------------------------------------------

TEST(ScenarioKnobsTest, CausalDisableRoundTrips) {
  check::ScenarioKnobs defaults;
  EXPECT_TRUE(defaults.causal);
  EXPECT_EQ(defaults.DisableList(), "");

  Result<check::ScenarioKnobs> parsed =
      check::ScenarioKnobs::FromDisableList("causal");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed.value().causal);
  EXPECT_TRUE(parsed.value().faults);
  EXPECT_EQ(parsed.value().DisableList(), "causal");

  EXPECT_FALSE(check::ScenarioKnobs::FromDisableList("causality").ok());
}

}  // namespace
}  // namespace elink
