file(REMOVE_RECURSE
  "libelink_sim.a"
)
