# Empty compiler generated dependencies file for elink_sim.
# This may be replaced when dependencies are built.
