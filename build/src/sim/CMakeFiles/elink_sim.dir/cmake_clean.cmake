file(REMOVE_RECURSE
  "CMakeFiles/elink_sim.dir/event_queue.cc.o"
  "CMakeFiles/elink_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/elink_sim.dir/graph.cc.o"
  "CMakeFiles/elink_sim.dir/graph.cc.o.d"
  "CMakeFiles/elink_sim.dir/network.cc.o"
  "CMakeFiles/elink_sim.dir/network.cc.o.d"
  "CMakeFiles/elink_sim.dir/stats.cc.o"
  "CMakeFiles/elink_sim.dir/stats.cc.o.d"
  "CMakeFiles/elink_sim.dir/topology.cc.o"
  "CMakeFiles/elink_sim.dir/topology.cc.o.d"
  "libelink_sim.a"
  "libelink_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elink_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
