file(REMOVE_RECURSE
  "CMakeFiles/elink_index.dir/backbone.cc.o"
  "CMakeFiles/elink_index.dir/backbone.cc.o.d"
  "CMakeFiles/elink_index.dir/mtree.cc.o"
  "CMakeFiles/elink_index.dir/mtree.cc.o.d"
  "CMakeFiles/elink_index.dir/path_query.cc.o"
  "CMakeFiles/elink_index.dir/path_query.cc.o.d"
  "CMakeFiles/elink_index.dir/query_protocol.cc.o"
  "CMakeFiles/elink_index.dir/query_protocol.cc.o.d"
  "CMakeFiles/elink_index.dir/range_query.cc.o"
  "CMakeFiles/elink_index.dir/range_query.cc.o.d"
  "CMakeFiles/elink_index.dir/tag.cc.o"
  "CMakeFiles/elink_index.dir/tag.cc.o.d"
  "libelink_index.a"
  "libelink_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elink_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
