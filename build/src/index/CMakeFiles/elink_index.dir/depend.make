# Empty dependencies file for elink_index.
# This may be replaced when dependencies are built.
