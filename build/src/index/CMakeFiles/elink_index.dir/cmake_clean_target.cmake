file(REMOVE_RECURSE
  "libelink_index.a"
)
