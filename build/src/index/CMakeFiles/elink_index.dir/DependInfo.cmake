
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/backbone.cc" "src/index/CMakeFiles/elink_index.dir/backbone.cc.o" "gcc" "src/index/CMakeFiles/elink_index.dir/backbone.cc.o.d"
  "/root/repo/src/index/mtree.cc" "src/index/CMakeFiles/elink_index.dir/mtree.cc.o" "gcc" "src/index/CMakeFiles/elink_index.dir/mtree.cc.o.d"
  "/root/repo/src/index/path_query.cc" "src/index/CMakeFiles/elink_index.dir/path_query.cc.o" "gcc" "src/index/CMakeFiles/elink_index.dir/path_query.cc.o.d"
  "/root/repo/src/index/query_protocol.cc" "src/index/CMakeFiles/elink_index.dir/query_protocol.cc.o" "gcc" "src/index/CMakeFiles/elink_index.dir/query_protocol.cc.o.d"
  "/root/repo/src/index/range_query.cc" "src/index/CMakeFiles/elink_index.dir/range_query.cc.o" "gcc" "src/index/CMakeFiles/elink_index.dir/range_query.cc.o.d"
  "/root/repo/src/index/tag.cc" "src/index/CMakeFiles/elink_index.dir/tag.cc.o" "gcc" "src/index/CMakeFiles/elink_index.dir/tag.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/elink_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/elink_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metric/CMakeFiles/elink_metric.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/elink_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/elink_data.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/elink_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/elink_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
