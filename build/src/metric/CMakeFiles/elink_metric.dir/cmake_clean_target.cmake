file(REMOVE_RECURSE
  "libelink_metric.a"
)
