# Empty dependencies file for elink_metric.
# This may be replaced when dependencies are built.
