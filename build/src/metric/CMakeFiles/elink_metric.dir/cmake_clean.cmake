file(REMOVE_RECURSE
  "CMakeFiles/elink_metric.dir/distance.cc.o"
  "CMakeFiles/elink_metric.dir/distance.cc.o.d"
  "libelink_metric.a"
  "libelink_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elink_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
