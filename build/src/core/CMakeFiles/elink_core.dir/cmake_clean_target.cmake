file(REMOVE_RECURSE
  "libelink_core.a"
)
