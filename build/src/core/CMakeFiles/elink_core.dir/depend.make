# Empty dependencies file for elink_core.
# This may be replaced when dependencies are built.
