file(REMOVE_RECURSE
  "CMakeFiles/elink_core.dir/clustered_network.cc.o"
  "CMakeFiles/elink_core.dir/clustered_network.cc.o.d"
  "libelink_core.a"
  "libelink_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elink_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
