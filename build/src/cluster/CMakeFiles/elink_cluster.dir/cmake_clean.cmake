file(REMOVE_RECURSE
  "CMakeFiles/elink_cluster.dir/clustering.cc.o"
  "CMakeFiles/elink_cluster.dir/clustering.cc.o.d"
  "CMakeFiles/elink_cluster.dir/elink.cc.o"
  "CMakeFiles/elink_cluster.dir/elink.cc.o.d"
  "CMakeFiles/elink_cluster.dir/maintenance.cc.o"
  "CMakeFiles/elink_cluster.dir/maintenance.cc.o.d"
  "CMakeFiles/elink_cluster.dir/maintenance_protocol.cc.o"
  "CMakeFiles/elink_cluster.dir/maintenance_protocol.cc.o.d"
  "CMakeFiles/elink_cluster.dir/quadtree.cc.o"
  "CMakeFiles/elink_cluster.dir/quadtree.cc.o.d"
  "libelink_cluster.a"
  "libelink_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elink_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
