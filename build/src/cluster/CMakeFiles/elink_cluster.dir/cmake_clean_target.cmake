file(REMOVE_RECURSE
  "libelink_cluster.a"
)
