# Empty dependencies file for elink_cluster.
# This may be replaced when dependencies are built.
