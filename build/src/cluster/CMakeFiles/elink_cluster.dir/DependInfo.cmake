
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/clustering.cc" "src/cluster/CMakeFiles/elink_cluster.dir/clustering.cc.o" "gcc" "src/cluster/CMakeFiles/elink_cluster.dir/clustering.cc.o.d"
  "/root/repo/src/cluster/elink.cc" "src/cluster/CMakeFiles/elink_cluster.dir/elink.cc.o" "gcc" "src/cluster/CMakeFiles/elink_cluster.dir/elink.cc.o.d"
  "/root/repo/src/cluster/maintenance.cc" "src/cluster/CMakeFiles/elink_cluster.dir/maintenance.cc.o" "gcc" "src/cluster/CMakeFiles/elink_cluster.dir/maintenance.cc.o.d"
  "/root/repo/src/cluster/maintenance_protocol.cc" "src/cluster/CMakeFiles/elink_cluster.dir/maintenance_protocol.cc.o" "gcc" "src/cluster/CMakeFiles/elink_cluster.dir/maintenance_protocol.cc.o.d"
  "/root/repo/src/cluster/quadtree.cc" "src/cluster/CMakeFiles/elink_cluster.dir/quadtree.cc.o" "gcc" "src/cluster/CMakeFiles/elink_cluster.dir/quadtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/elink_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metric/CMakeFiles/elink_metric.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/elink_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/elink_common.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/elink_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/elink_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
