
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timeseries/ar_model.cc" "src/timeseries/CMakeFiles/elink_timeseries.dir/ar_model.cc.o" "gcc" "src/timeseries/CMakeFiles/elink_timeseries.dir/ar_model.cc.o.d"
  "/root/repo/src/timeseries/order_selection.cc" "src/timeseries/CMakeFiles/elink_timeseries.dir/order_selection.cc.o" "gcc" "src/timeseries/CMakeFiles/elink_timeseries.dir/order_selection.cc.o.d"
  "/root/repo/src/timeseries/rls.cc" "src/timeseries/CMakeFiles/elink_timeseries.dir/rls.cc.o" "gcc" "src/timeseries/CMakeFiles/elink_timeseries.dir/rls.cc.o.d"
  "/root/repo/src/timeseries/seasonal.cc" "src/timeseries/CMakeFiles/elink_timeseries.dir/seasonal.cc.o" "gcc" "src/timeseries/CMakeFiles/elink_timeseries.dir/seasonal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/elink_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/elink_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
