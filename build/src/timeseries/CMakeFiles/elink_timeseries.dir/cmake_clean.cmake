file(REMOVE_RECURSE
  "CMakeFiles/elink_timeseries.dir/ar_model.cc.o"
  "CMakeFiles/elink_timeseries.dir/ar_model.cc.o.d"
  "CMakeFiles/elink_timeseries.dir/order_selection.cc.o"
  "CMakeFiles/elink_timeseries.dir/order_selection.cc.o.d"
  "CMakeFiles/elink_timeseries.dir/rls.cc.o"
  "CMakeFiles/elink_timeseries.dir/rls.cc.o.d"
  "CMakeFiles/elink_timeseries.dir/seasonal.cc.o"
  "CMakeFiles/elink_timeseries.dir/seasonal.cc.o.d"
  "libelink_timeseries.a"
  "libelink_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elink_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
