# Empty compiler generated dependencies file for elink_timeseries.
# This may be replaced when dependencies are built.
