# Empty dependencies file for elink_timeseries.
# This may be replaced when dependencies are built.
