file(REMOVE_RECURSE
  "libelink_timeseries.a"
)
