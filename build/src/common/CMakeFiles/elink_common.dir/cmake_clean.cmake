file(REMOVE_RECURSE
  "CMakeFiles/elink_common.dir/logging.cc.o"
  "CMakeFiles/elink_common.dir/logging.cc.o.d"
  "CMakeFiles/elink_common.dir/rng.cc.o"
  "CMakeFiles/elink_common.dir/rng.cc.o.d"
  "CMakeFiles/elink_common.dir/status.cc.o"
  "CMakeFiles/elink_common.dir/status.cc.o.d"
  "CMakeFiles/elink_common.dir/strings.cc.o"
  "CMakeFiles/elink_common.dir/strings.cc.o.d"
  "libelink_common.a"
  "libelink_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elink_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
