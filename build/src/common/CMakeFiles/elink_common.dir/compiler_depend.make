# Empty compiler generated dependencies file for elink_common.
# This may be replaced when dependencies are built.
