file(REMOVE_RECURSE
  "libelink_common.a"
)
