
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/centralized_cost.cc" "src/baselines/CMakeFiles/elink_baselines.dir/centralized_cost.cc.o" "gcc" "src/baselines/CMakeFiles/elink_baselines.dir/centralized_cost.cc.o.d"
  "/root/repo/src/baselines/exact.cc" "src/baselines/CMakeFiles/elink_baselines.dir/exact.cc.o" "gcc" "src/baselines/CMakeFiles/elink_baselines.dir/exact.cc.o.d"
  "/root/repo/src/baselines/hierarchical.cc" "src/baselines/CMakeFiles/elink_baselines.dir/hierarchical.cc.o" "gcc" "src/baselines/CMakeFiles/elink_baselines.dir/hierarchical.cc.o.d"
  "/root/repo/src/baselines/kmedoids.cc" "src/baselines/CMakeFiles/elink_baselines.dir/kmedoids.cc.o" "gcc" "src/baselines/CMakeFiles/elink_baselines.dir/kmedoids.cc.o.d"
  "/root/repo/src/baselines/spanning_forest.cc" "src/baselines/CMakeFiles/elink_baselines.dir/spanning_forest.cc.o" "gcc" "src/baselines/CMakeFiles/elink_baselines.dir/spanning_forest.cc.o.d"
  "/root/repo/src/baselines/spectral.cc" "src/baselines/CMakeFiles/elink_baselines.dir/spectral.cc.o" "gcc" "src/baselines/CMakeFiles/elink_baselines.dir/spectral.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/elink_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/elink_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/elink_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metric/CMakeFiles/elink_metric.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/elink_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/elink_data.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/elink_timeseries.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
