# Empty compiler generated dependencies file for elink_baselines.
# This may be replaced when dependencies are built.
