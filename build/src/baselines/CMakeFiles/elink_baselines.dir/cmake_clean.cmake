file(REMOVE_RECURSE
  "CMakeFiles/elink_baselines.dir/centralized_cost.cc.o"
  "CMakeFiles/elink_baselines.dir/centralized_cost.cc.o.d"
  "CMakeFiles/elink_baselines.dir/exact.cc.o"
  "CMakeFiles/elink_baselines.dir/exact.cc.o.d"
  "CMakeFiles/elink_baselines.dir/hierarchical.cc.o"
  "CMakeFiles/elink_baselines.dir/hierarchical.cc.o.d"
  "CMakeFiles/elink_baselines.dir/kmedoids.cc.o"
  "CMakeFiles/elink_baselines.dir/kmedoids.cc.o.d"
  "CMakeFiles/elink_baselines.dir/spanning_forest.cc.o"
  "CMakeFiles/elink_baselines.dir/spanning_forest.cc.o.d"
  "CMakeFiles/elink_baselines.dir/spectral.cc.o"
  "CMakeFiles/elink_baselines.dir/spectral.cc.o.d"
  "libelink_baselines.a"
  "libelink_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elink_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
