file(REMOVE_RECURSE
  "libelink_baselines.a"
)
