# Empty dependencies file for elink_linalg.
# This may be replaced when dependencies are built.
