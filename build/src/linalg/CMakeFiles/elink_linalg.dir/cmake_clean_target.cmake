file(REMOVE_RECURSE
  "libelink_linalg.a"
)
