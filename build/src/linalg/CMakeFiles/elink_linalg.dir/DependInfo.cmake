
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/eigen.cc" "src/linalg/CMakeFiles/elink_linalg.dir/eigen.cc.o" "gcc" "src/linalg/CMakeFiles/elink_linalg.dir/eigen.cc.o.d"
  "/root/repo/src/linalg/kmeans.cc" "src/linalg/CMakeFiles/elink_linalg.dir/kmeans.cc.o" "gcc" "src/linalg/CMakeFiles/elink_linalg.dir/kmeans.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/linalg/CMakeFiles/elink_linalg.dir/matrix.cc.o" "gcc" "src/linalg/CMakeFiles/elink_linalg.dir/matrix.cc.o.d"
  "/root/repo/src/linalg/solve.cc" "src/linalg/CMakeFiles/elink_linalg.dir/solve.cc.o" "gcc" "src/linalg/CMakeFiles/elink_linalg.dir/solve.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/elink_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
