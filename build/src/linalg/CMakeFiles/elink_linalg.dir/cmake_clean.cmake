file(REMOVE_RECURSE
  "CMakeFiles/elink_linalg.dir/eigen.cc.o"
  "CMakeFiles/elink_linalg.dir/eigen.cc.o.d"
  "CMakeFiles/elink_linalg.dir/kmeans.cc.o"
  "CMakeFiles/elink_linalg.dir/kmeans.cc.o.d"
  "CMakeFiles/elink_linalg.dir/matrix.cc.o"
  "CMakeFiles/elink_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/elink_linalg.dir/solve.cc.o"
  "CMakeFiles/elink_linalg.dir/solve.cc.o.d"
  "libelink_linalg.a"
  "libelink_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elink_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
