# Empty dependencies file for elink_data.
# This may be replaced when dependencies are built.
