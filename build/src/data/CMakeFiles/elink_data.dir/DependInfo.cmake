
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/elink_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/elink_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/plume.cc" "src/data/CMakeFiles/elink_data.dir/plume.cc.o" "gcc" "src/data/CMakeFiles/elink_data.dir/plume.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/elink_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/elink_data.dir/synthetic.cc.o.d"
  "/root/repo/src/data/tao.cc" "src/data/CMakeFiles/elink_data.dir/tao.cc.o" "gcc" "src/data/CMakeFiles/elink_data.dir/tao.cc.o.d"
  "/root/repo/src/data/terrain.cc" "src/data/CMakeFiles/elink_data.dir/terrain.cc.o" "gcc" "src/data/CMakeFiles/elink_data.dir/terrain.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metric/CMakeFiles/elink_metric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/elink_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/elink_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/elink_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/elink_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
