file(REMOVE_RECURSE
  "libelink_data.a"
)
