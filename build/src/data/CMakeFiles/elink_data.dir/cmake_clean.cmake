file(REMOVE_RECURSE
  "CMakeFiles/elink_data.dir/dataset.cc.o"
  "CMakeFiles/elink_data.dir/dataset.cc.o.d"
  "CMakeFiles/elink_data.dir/plume.cc.o"
  "CMakeFiles/elink_data.dir/plume.cc.o.d"
  "CMakeFiles/elink_data.dir/synthetic.cc.o"
  "CMakeFiles/elink_data.dir/synthetic.cc.o.d"
  "CMakeFiles/elink_data.dir/tao.cc.o"
  "CMakeFiles/elink_data.dir/tao.cc.o.d"
  "CMakeFiles/elink_data.dir/terrain.cc.o"
  "CMakeFiles/elink_data.dir/terrain.cc.o.d"
  "libelink_data.a"
  "libelink_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elink_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
