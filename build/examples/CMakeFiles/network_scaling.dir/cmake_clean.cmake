file(REMOVE_RECURSE
  "CMakeFiles/network_scaling.dir/network_scaling.cpp.o"
  "CMakeFiles/network_scaling.dir/network_scaling.cpp.o.d"
  "network_scaling"
  "network_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
