# Empty dependencies file for network_scaling.
# This may be replaced when dependencies are built.
