file(REMOVE_RECURSE
  "CMakeFiles/hazard_navigation.dir/hazard_navigation.cpp.o"
  "CMakeFiles/hazard_navigation.dir/hazard_navigation.cpp.o.d"
  "hazard_navigation"
  "hazard_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hazard_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
