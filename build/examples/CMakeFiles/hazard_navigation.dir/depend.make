# Empty dependencies file for hazard_navigation.
# This may be replaced when dependencies are built.
