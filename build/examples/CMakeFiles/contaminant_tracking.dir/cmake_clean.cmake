file(REMOVE_RECURSE
  "CMakeFiles/contaminant_tracking.dir/contaminant_tracking.cpp.o"
  "CMakeFiles/contaminant_tracking.dir/contaminant_tracking.cpp.o.d"
  "contaminant_tracking"
  "contaminant_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contaminant_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
