# Empty dependencies file for contaminant_tracking.
# This may be replaced when dependencies are built.
