file(REMOVE_RECURSE
  "../bench/ablation_alternatives"
  "../bench/ablation_alternatives.pdb"
  "CMakeFiles/ablation_alternatives.dir/ablation_alternatives.cc.o"
  "CMakeFiles/ablation_alternatives.dir/ablation_alternatives.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
