file(REMOVE_RECURSE
  "../bench/fig11_quality_slack"
  "../bench/fig11_quality_slack.pdb"
  "CMakeFiles/fig11_quality_slack.dir/fig11_quality_slack.cc.o"
  "CMakeFiles/fig11_quality_slack.dir/fig11_quality_slack.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_quality_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
