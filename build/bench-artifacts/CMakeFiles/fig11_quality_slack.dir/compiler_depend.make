# Empty compiler generated dependencies file for fig11_quality_slack.
# This may be replaced when dependencies are built.
