# Empty dependencies file for complexity_check.
# This may be replaced when dependencies are built.
