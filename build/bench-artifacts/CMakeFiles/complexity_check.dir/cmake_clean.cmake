file(REMOVE_RECURSE
  "../bench/complexity_check"
  "../bench/complexity_check.pdb"
  "CMakeFiles/complexity_check.dir/complexity_check.cc.o"
  "CMakeFiles/complexity_check.dir/complexity_check.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complexity_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
