file(REMOVE_RECURSE
  "../bench/fig12_scalability_time"
  "../bench/fig12_scalability_time.pdb"
  "CMakeFiles/fig12_scalability_time.dir/fig12_scalability_time.cc.o"
  "CMakeFiles/fig12_scalability_time.dir/fig12_scalability_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_scalability_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
