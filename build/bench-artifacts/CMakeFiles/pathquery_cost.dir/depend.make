# Empty dependencies file for pathquery_cost.
# This may be replaced when dependencies are built.
