file(REMOVE_RECURSE
  "../bench/pathquery_cost"
  "../bench/pathquery_cost.pdb"
  "CMakeFiles/pathquery_cost.dir/pathquery_cost.cc.o"
  "CMakeFiles/pathquery_cost.dir/pathquery_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathquery_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
