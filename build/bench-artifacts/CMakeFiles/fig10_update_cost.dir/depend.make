# Empty dependencies file for fig10_update_cost.
# This may be replaced when dependencies are built.
