file(REMOVE_RECURSE
  "../bench/fig10_update_cost"
  "../bench/fig10_update_cost.pdb"
  "CMakeFiles/fig10_update_cost.dir/fig10_update_cost.cc.o"
  "CMakeFiles/fig10_update_cost.dir/fig10_update_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_update_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
