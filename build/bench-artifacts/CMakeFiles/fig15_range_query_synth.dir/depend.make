# Empty dependencies file for fig15_range_query_synth.
# This may be replaced when dependencies are built.
