file(REMOVE_RECURSE
  "../bench/fig15_range_query_synth"
  "../bench/fig15_range_query_synth.pdb"
  "CMakeFiles/fig15_range_query_synth.dir/fig15_range_query_synth.cc.o"
  "CMakeFiles/fig15_range_query_synth.dir/fig15_range_query_synth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_range_query_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
