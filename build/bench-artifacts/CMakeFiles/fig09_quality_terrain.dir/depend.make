# Empty dependencies file for fig09_quality_terrain.
# This may be replaced when dependencies are built.
