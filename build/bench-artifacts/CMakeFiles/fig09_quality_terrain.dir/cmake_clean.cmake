file(REMOVE_RECURSE
  "../bench/fig09_quality_terrain"
  "../bench/fig09_quality_terrain.pdb"
  "CMakeFiles/fig09_quality_terrain.dir/fig09_quality_terrain.cc.o"
  "CMakeFiles/fig09_quality_terrain.dir/fig09_quality_terrain.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_quality_terrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
