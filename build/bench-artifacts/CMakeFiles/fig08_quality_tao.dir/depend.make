# Empty dependencies file for fig08_quality_tao.
# This may be replaced when dependencies are built.
