file(REMOVE_RECURSE
  "../bench/fig08_quality_tao"
  "../bench/fig08_quality_tao.pdb"
  "CMakeFiles/fig08_quality_tao.dir/fig08_quality_tao.cc.o"
  "CMakeFiles/fig08_quality_tao.dir/fig08_quality_tao.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_quality_tao.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
