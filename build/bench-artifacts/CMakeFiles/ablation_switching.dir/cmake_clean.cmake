file(REMOVE_RECURSE
  "../bench/ablation_switching"
  "../bench/ablation_switching.pdb"
  "CMakeFiles/ablation_switching.dir/ablation_switching.cc.o"
  "CMakeFiles/ablation_switching.dir/ablation_switching.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
