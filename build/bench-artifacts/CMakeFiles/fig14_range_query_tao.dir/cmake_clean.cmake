file(REMOVE_RECURSE
  "../bench/fig14_range_query_tao"
  "../bench/fig14_range_query_tao.pdb"
  "CMakeFiles/fig14_range_query_tao.dir/fig14_range_query_tao.cc.o"
  "CMakeFiles/fig14_range_query_tao.dir/fig14_range_query_tao.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_range_query_tao.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
