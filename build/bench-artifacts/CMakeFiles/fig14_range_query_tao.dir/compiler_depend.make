# Empty compiler generated dependencies file for fig14_range_query_tao.
# This may be replaced when dependencies are built.
