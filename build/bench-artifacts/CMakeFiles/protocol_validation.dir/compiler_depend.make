# Empty compiler generated dependencies file for protocol_validation.
# This may be replaced when dependencies are built.
