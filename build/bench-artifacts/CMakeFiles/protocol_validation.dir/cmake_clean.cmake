file(REMOVE_RECURSE
  "../bench/protocol_validation"
  "../bench/protocol_validation.pdb"
  "CMakeFiles/protocol_validation.dir/protocol_validation.cc.o"
  "CMakeFiles/protocol_validation.dir/protocol_validation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
