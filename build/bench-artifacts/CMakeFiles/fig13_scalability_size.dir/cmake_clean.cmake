file(REMOVE_RECURSE
  "../bench/fig13_scalability_size"
  "../bench/fig13_scalability_size.pdb"
  "CMakeFiles/fig13_scalability_size.dir/fig13_scalability_size.cc.o"
  "CMakeFiles/fig13_scalability_size.dir/fig13_scalability_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_scalability_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
