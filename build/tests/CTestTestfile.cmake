# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/timeseries_test[1]_include.cmake")
include("/root/repo/build/tests/metric_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_model_test[1]_include.cmake")
include("/root/repo/build/tests/elink_test[1]_include.cmake")
include("/root/repo/build/tests/maintenance_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/index_query_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/theorem1_test[1]_include.cmake")
include("/root/repo/build/tests/query_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/maintenance_protocol_test[1]_include.cmake")
