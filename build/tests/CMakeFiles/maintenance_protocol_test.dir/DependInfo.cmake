
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/maintenance_protocol_test.cc" "tests/CMakeFiles/maintenance_protocol_test.dir/maintenance_protocol_test.cc.o" "gcc" "tests/CMakeFiles/maintenance_protocol_test.dir/maintenance_protocol_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/elink_core.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/elink_index.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/elink_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/elink_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/elink_data.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/elink_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/elink_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metric/CMakeFiles/elink_metric.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/elink_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/elink_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
