# Empty compiler generated dependencies file for maintenance_protocol_test.
# This may be replaced when dependencies are built.
