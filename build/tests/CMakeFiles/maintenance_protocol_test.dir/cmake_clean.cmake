file(REMOVE_RECURSE
  "CMakeFiles/maintenance_protocol_test.dir/maintenance_protocol_test.cc.o"
  "CMakeFiles/maintenance_protocol_test.dir/maintenance_protocol_test.cc.o.d"
  "maintenance_protocol_test"
  "maintenance_protocol_test.pdb"
  "maintenance_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maintenance_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
