file(REMOVE_RECURSE
  "CMakeFiles/query_protocol_test.dir/query_protocol_test.cc.o"
  "CMakeFiles/query_protocol_test.dir/query_protocol_test.cc.o.d"
  "query_protocol_test"
  "query_protocol_test.pdb"
  "query_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
