# Empty compiler generated dependencies file for query_protocol_test.
# This may be replaced when dependencies are built.
