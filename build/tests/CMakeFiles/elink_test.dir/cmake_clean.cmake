file(REMOVE_RECURSE
  "CMakeFiles/elink_test.dir/elink_test.cc.o"
  "CMakeFiles/elink_test.dir/elink_test.cc.o.d"
  "elink_test"
  "elink_test.pdb"
  "elink_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
