# Empty compiler generated dependencies file for elink_test.
# This may be replaced when dependencies are built.
