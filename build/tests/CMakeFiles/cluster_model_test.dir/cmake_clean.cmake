file(REMOVE_RECURSE
  "CMakeFiles/cluster_model_test.dir/cluster_model_test.cc.o"
  "CMakeFiles/cluster_model_test.dir/cluster_model_test.cc.o.d"
  "cluster_model_test"
  "cluster_model_test.pdb"
  "cluster_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
